"""Crash-point exploration: kill the campaign at every persist op, resume,
and prove recovery.

The coverage argument: the durability layer mutates disk only through the
:class:`repro.persist.FileSystem` seam, so the on-disk state between any
two syscalls is exactly "state after op ``k-1``".  Simulating a kill
*before* op ``k`` for every ``k`` therefore visits **every distinct
post-kill disk state** an abrupt death could leave behind.  Partial writes
are the one state family that model misses, so a second sweep ("torn"
mode) replays each write op half-delivered before dying.

Each crash point runs the deterministic :class:`repro.chaos.workload.
ChaosWorkload` in a fresh directory under an armed :class:`FaultyFS`,
catches the :class:`ChaosCrash` (or reaps the SIGKILLed subprocess),
resumes against the real filesystem, and asserts the recovery invariants:

* the aggregate CSV is byte-identical to an uninterrupted baseline run;
* no journal contains a torn *interior* line (a torn tail is the expected
  post-crash state and must be healed, not spread);
* recovery is monotone: every checkpoint/quarantine key and every complete
  results record present before the kill is still present after resume;
* telemetry ``status.json``, when present, always parses.

A point that violates any invariant keeps its directory on disk for
postmortem; passing points are deleted so full sweeps stay cheap.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.chaos.fs import ChaosCrash, FaultyFS, OpRecord
from repro.chaos.workload import ChaosWorkload
from repro.obs.telemetry import STATUS_FILENAME
from repro.persist import read_jsonl_report, use_fs

__all__ = [
    "CrashPointResult",
    "ExplorationReport",
    "enumerate_ops",
    "explore_crash_points",
    "run_crash_point_child",
]

EXPLORE_SCHEMA_VERSION = 1

# How a staged death is delivered: an in-process ChaosCrash unwind (fast,
# used for full sweeps) or a real SIGKILL of a child process (full process-
# death fidelity, used as a spot check — it is two orders of magnitude
# slower per point).
CRASH_ACTIONS = ("raise", "sigkill")
CRASH_MODES = ("before", "torn")

_SIGKILL_RC = -9


def enumerate_ops(
    workload: ChaosWorkload, root: Union[str, Path]
) -> Tuple[List[OpRecord], bytes]:
    """Run the workload once under a recording passthrough FaultyFS.

    Returns the full persist-operation stream and the baseline aggregate
    CSV bytes.  Because the workload is deterministic, every later crash-
    point run replays exactly this op stream up to its kill index.
    """
    fs = FaultyFS()
    with use_fs(fs):
        csv = workload.run(root)
    return list(fs.ops), csv


@dataclass
class CrashPointResult:
    """Outcome of one simulated kill + resume."""

    index: int
    mode: str
    op: str
    path: str
    crashed: bool = False
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.crashed and not self.problems

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "mode": self.mode,
            "op": self.op,
            "path": self.path,
            "crashed": self.crashed,
            "ok": self.ok,
            "problems": list(self.problems),
        }


@dataclass
class ExplorationReport:
    """Every crash point visited, and whether recovery held everywhere."""

    total_ops: int
    points: List[CrashPointResult] = field(default_factory=list)
    kept_dirs: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[CrashPointResult]:
        return [p for p in self.points if not p.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "schema_version": EXPLORE_SCHEMA_VERSION,
            "total_ops": self.total_ops,
            "points_checked": len(self.points),
            "failures": len(self.failures),
            "ok": self.ok,
            "kept_dirs": list(self.kept_dirs),
            "points": [p.to_jsonable() for p in self.points],
        }

    def summary(self) -> str:
        lines = [
            f"crash-point exploration: {len(self.points)} points over "
            f"{self.total_ops} persist ops -> "
            + ("all recovered" if self.ok else f"{len(self.failures)} FAILED")
        ]
        for point in self.failures:
            lines.append(
                f"  FAIL [{point.mode} @ {point.index}] {point.op} "
                f"{point.path}: " + "; ".join(point.problems)
            )
        return "\n".join(lines)


def _journal_snapshot(
    workload: ChaosWorkload, root: Path
) -> Dict[str, Any]:
    """Tolerant read of the post-kill disk state (complete records only)."""
    ckpt, quarantine, results = workload.journal_paths(root)
    return {
        "checkpoint_keys": {
            str(r.get("key"))
            for r in read_jsonl_report(ckpt).records
            if isinstance(r, dict)
        },
        "quarantine_keys": {
            str(r.get("key"))
            for r in read_jsonl_report(quarantine).records
            if isinstance(r, dict)
        },
        "results_records": list(read_jsonl_report(results).records),
    }


def _check_recovery(
    workload: ChaosWorkload,
    root: Path,
    baseline_csv: bytes,
    pre: Dict[str, Any],
) -> List[str]:
    """The recovery invariants, evaluated after a resume. Returns problems."""
    problems: List[str] = []

    csv_path = workload.csv_path(root)
    try:
        resumed_csv = csv_path.read_bytes()
    except OSError as exc:
        problems.append(f"aggregate CSV unreadable after resume: {exc}")
        resumed_csv = None
    if resumed_csv is not None and resumed_csv != baseline_csv:
        problems.append(
            "aggregate CSV differs from uninterrupted baseline "
            f"({len(resumed_csv)} vs {len(baseline_csv)} bytes)"
        )

    for journal in workload.journal_paths(root):
        report = read_jsonl_report(journal)
        if report.skipped_interior:
            problems.append(
                f"{journal.name}: {report.skipped_interior} torn/corrupt "
                "interior line(s) after resume"
            )
        if report.torn_tail:
            problems.append(
                f"{journal.name}: torn tail survived resume (appends must "
                "heal it)"
            )

    status_path = workload.telemetry_dir(root) / STATUS_FILENAME
    if status_path.exists():
        try:
            json.loads(status_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"status.json unparseable: {exc}")
    else:
        problems.append("status.json missing after resume")

    post = _journal_snapshot(workload, root)
    lost_ckpt = pre["checkpoint_keys"] - post["checkpoint_keys"]
    if lost_ckpt:
        problems.append(
            f"checkpoint lost {len(lost_ckpt)} completed key(s) across "
            "crash+resume"
        )
    lost_quarantine = pre["quarantine_keys"] - post["quarantine_keys"]
    if lost_quarantine:
        problems.append(
            f"quarantine lost {len(lost_quarantine)} key(s) across "
            "crash+resume"
        )
    pre_results = pre["results_records"]
    post_results = post["results_records"]
    if post_results[: len(pre_results)] != pre_results:
        problems.append(
            "results journal is not an append-extension of its pre-kill "
            "complete records"
        )
    return problems


def _crash_in_process(
    workload: ChaosWorkload, root: Path, index: int, mode: str
) -> bool:
    """Run the workload to its staged in-process death; True if it died."""
    fs = FaultyFS(crash_at=index, crash_mode=mode)
    try:
        with use_fs(fs):
            workload.run(root)
    except ChaosCrash:
        return True
    return False


def _crash_subprocess(
    workload: ChaosWorkload, root: Path, index: int, mode: str
) -> Tuple[bool, str]:
    """Run the crash point in a child that SIGKILLs itself at the op.

    Full process-death fidelity: no ``finally`` blocks, no atexit, no
    buffered-write flushing — the kernel reclaims the process mid-syscall,
    exactly like ``kill -9`` on a real campaign.
    """
    spec = {
        "workload": workload.to_jsonable(),
        "root": str(root),
        "crash_at": index,
        "crash_mode": mode,
    }
    proc = subprocess.run(
        [sys.executable, "-m", "repro.chaos", "_point", json.dumps(spec)],
        capture_output=True,
        text=True,
    )
    if proc.returncode == _SIGKILL_RC:
        return True, ""
    return False, (
        f"child exited {proc.returncode} instead of SIGKILL; "
        f"stderr: {proc.stderr.strip()[-400:]}"
    )


def run_crash_point_child(spec: Dict[str, Any]) -> int:
    """Child-process body for SIGKILL crash points (``_point`` CLI verb)."""
    workload = ChaosWorkload.from_jsonable(spec["workload"])
    fs = FaultyFS(
        crash_at=int(spec["crash_at"]),
        crash_mode=str(spec["crash_mode"]),
        crash_action="sigkill",
    )
    with use_fs(fs):
        workload.run(spec["root"])
    # Reaching here means the staged op never happened: index out of range.
    return 3


def explore_crash_points(
    workload: ChaosWorkload,
    work_dir: Union[str, Path],
    modes: Sequence[str] = ("before", "torn"),
    crash_action: str = "raise",
    indices: Optional[Sequence[int]] = None,
    stride: int = 1,
    keep_failures: bool = True,
    keep_passing: bool = False,
) -> ExplorationReport:
    """Kill the workload at every persist op, resume, assert recovery.

    ``modes`` selects the sweeps: ``before`` visits every op index (each a
    distinct post-kill disk state), ``torn`` revisits write ops with the
    payload half-delivered.  ``indices`` restricts the sweep to specific op
    indices and ``stride`` samples every N-th point — both for quick local
    iteration; CI runs the full sweep.  ``crash_action='sigkill'`` delivers
    each death as a real ``SIGKILL`` to a child process instead of an
    in-process unwind.
    """
    if crash_action not in CRASH_ACTIONS:
        raise ValueError(f"crash_action must be one of {CRASH_ACTIONS}")
    for mode in modes:
        if mode not in CRASH_MODES:
            raise ValueError(f"unknown crash mode {mode!r}")
    if stride < 1:
        raise ValueError("stride must be >= 1")

    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    ops, baseline_csv = enumerate_ops(workload, work_dir / "baseline")
    report = ExplorationReport(total_ops=len(ops))

    wanted = set(indices) if indices is not None else None
    for mode in modes:
        for op in ops:
            if wanted is not None and op.index not in wanted:
                continue
            if op.index % stride:
                continue
            if mode == "torn" and op.op != "write":
                continue
            point = CrashPointResult(
                index=op.index, mode=mode, op=op.op, path=op.path
            )
            report.points.append(point)
            root = work_dir / f"{mode}-{op.index:04d}"
            if root.exists():
                shutil.rmtree(root)
            if crash_action == "raise":
                point.crashed = _crash_in_process(
                    workload, root, op.index, mode
                )
                if not point.crashed:
                    point.problems.append(
                        "staged crash never fired (op stream diverged from "
                        "baseline?)"
                    )
            else:
                point.crashed, why = _crash_subprocess(
                    workload, root, op.index, mode
                )
                if not point.crashed:
                    point.problems.append(why)

            pre = _journal_snapshot(workload, root)
            try:
                workload.run(root, resume=True)
            except Exception as exc:  # noqa: BLE001 - any resume crash is a finding
                point.problems.append(
                    f"resume raised {type(exc).__name__}: {exc}"
                )
            else:
                point.problems.extend(
                    _check_recovery(workload, root, baseline_csv, pre)
                )

            keep = keep_passing if point.ok else keep_failures
            if keep:
                report.kept_dirs.append(str(root))
            else:
                shutil.rmtree(root, ignore_errors=True)
    return report
