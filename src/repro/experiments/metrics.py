"""Run-level metrics matching the paper's five evaluation quantities.

Section VI compares: total data packets, total SNACK packets, total
advertisement packets, total communication cost in bytes (data + SNACK +
advertisement, to account for LR-Seluge's ``n - k`` extra SNACK bits), and
overall dissemination latency (time until every node holds the image).

Fault-injection runs additionally report degradation: the completion rate
(nodes finished / nodes tracked), fault event counts, and — via
:func:`degradation` — the extra packets and latency penalty relative to a
fault-free baseline of the same scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["RunResult", "DegradationReport", "degradation"]


@dataclass
class RunResult:
    """Outcome of one simulated dissemination."""

    protocol: str
    completed: bool
    latency: float
    counters: Dict[str, int] = field(default_factory=dict)
    per_node_completion: Dict[int, float] = field(default_factory=dict)
    images_ok: Optional[bool] = None
    seed: int = 0
    n_nodes: Optional[int] = None   # tracked receivers (excludes the base)
    tracked: Optional[Tuple[int, ...]] = None  # ids behind n_nodes, if known

    # -- the paper's five metrics ------------------------------------------------

    @property
    def data_packets(self) -> int:
        return self.counters.get("tx_data", 0) + self.counters.get("tx_signature", 0)

    @property
    def snack_packets(self) -> int:
        return self.counters.get("tx_snack", 0)

    @property
    def adv_packets(self) -> int:
        return self.counters.get("tx_adv", 0)

    @property
    def total_bytes(self) -> int:
        return (
            self.counters.get("tx_data_bytes", 0)
            + self.counters.get("tx_signature_bytes", 0)
            + self.counters.get("tx_snack_bytes", 0)
            + self.counters.get("tx_adv_bytes", 0)
        )

    @property
    def data_bytes(self) -> int:
        return self.counters.get("tx_data_bytes", 0) + self.counters.get(
            "tx_signature_bytes", 0
        )

    # -- fault/degradation metrics -------------------------------------------------

    @property
    def completion_rate(self) -> Optional[float]:
        """Fraction of tracked nodes that completed (None when untracked).

        Completion events can arrive from nodes outside the tracked set
        (e.g. a late base-station republish, or a caller folding several
        node populations into one recorder); only completions from tracked
        ids count, and the rate is clamped so it can never exceed 1.0.
        """
        if self.n_nodes is None:
            return None
        if self.n_nodes == 0:
            return 1.0
        done = len(self.per_node_completion)
        if self.tracked is not None:
            done = len(set(self.tracked) & set(self.per_node_completion))
        return min(done, self.n_nodes) / self.n_nodes

    @property
    def crash_count(self) -> int:
        return self.counters.get("fault_crash", 0)

    @property
    def reboot_count(self) -> int:
        return self.counters.get("fault_reboot", 0)

    def summary_row(self) -> Dict[str, float]:
        """The five paper metrics as a flat dict (for report tables)."""
        return {
            "data_pkts": self.data_packets,
            "snack_pkts": self.snack_packets,
            "adv_pkts": self.adv_packets,
            "total_bytes": self.total_bytes,
            "latency_s": round(self.latency, 2),
        }

    # -- checkpoint (de)serialisation ----------------------------------------------

    def to_jsonable(self) -> Dict[str, object]:
        """A JSON-safe dict that :meth:`from_jsonable` restores exactly.

        Floats survive JSON round-trips bit-for-bit (repr-shortest encoding),
        so a result replayed from a campaign checkpoint is indistinguishable
        from a freshly computed one — the foundation of byte-identical
        resume.  Int dict keys become strings in JSON and are converted back.
        """
        return {
            "protocol": self.protocol,
            "completed": self.completed,
            "latency": self.latency,
            "counters": dict(self.counters),
            "per_node_completion": {
                str(node): t for node, t in self.per_node_completion.items()
            },
            "images_ok": self.images_ok,
            "seed": self.seed,
            "n_nodes": self.n_nodes,
            "tracked": list(self.tracked) if self.tracked is not None else None,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "RunResult":
        """Rebuild a result from :meth:`to_jsonable` output."""
        tracked = data.get("tracked")
        n_nodes = data.get("n_nodes")
        images_ok = data.get("images_ok")
        return cls(
            protocol=str(data.get("protocol", "?")),
            completed=bool(data.get("completed", False)),
            latency=float(data.get("latency", 0.0)),
            counters={
                str(k): int(v)
                for k, v in dict(data.get("counters") or {}).items()
            },
            per_node_completion={
                int(k): float(v)
                for k, v in dict(data.get("per_node_completion") or {}).items()
            },
            images_ok=None if images_ok is None else bool(images_ok),
            seed=int(data.get("seed", 0)),
            n_nodes=None if n_nodes is None else int(n_nodes),
            tracked=None if tracked is None else tuple(int(i) for i in tracked),
        )

    def __str__(self) -> str:  # pragma: no cover - convenience formatting
        status = "ok" if self.completed else "INCOMPLETE"
        return (
            f"{self.protocol}: {status} data={self.data_packets} "
            f"snack={self.snack_packets} adv={self.adv_packets} "
            f"bytes={self.total_bytes} latency={self.latency:.1f}s"
        )


@dataclass(frozen=True)
class DegradationReport:
    """How much a faulty run paid relative to its fault-free baseline."""

    completion_rate: Optional[float]
    crashes: int
    reboots: int
    extra_data_packets: int
    extra_snack_packets: int
    extra_total_bytes: int
    latency_penalty_s: float
    latency_ratio: float

    def summary_row(self) -> Dict[str, float]:
        return {
            "completion_rate": (
                round(self.completion_rate, 4)
                if self.completion_rate is not None
                else float("nan")
            ),
            "crashes": self.crashes,
            "reboots": self.reboots,
            "extra_data_pkts": self.extra_data_packets,
            "extra_snack_pkts": self.extra_snack_packets,
            "extra_bytes": self.extra_total_bytes,
            "latency_penalty_s": round(self.latency_penalty_s, 2),
            "latency_ratio": round(self.latency_ratio, 3),
        }


def degradation(faulty: RunResult, baseline: RunResult) -> DegradationReport:
    """Compare a fault-injected run against a fault-free run of the same
    scenario: the extra traffic and latency are the cost of the faults."""
    ratio = faulty.latency / baseline.latency if baseline.latency > 0 else float("inf")
    return DegradationReport(
        completion_rate=faulty.completion_rate,
        crashes=faulty.crash_count,
        reboots=faulty.reboot_count,
        extra_data_packets=faulty.data_packets - baseline.data_packets,
        extra_snack_packets=faulty.snack_packets - baseline.snack_packets,
        extra_total_bytes=faulty.total_bytes - baseline.total_bytes,
        latency_penalty_s=faulty.latency - baseline.latency,
        latency_ratio=ratio,
    )
