"""Run-level metrics matching the paper's five evaluation quantities.

Section VI compares: total data packets, total SNACK packets, total
advertisement packets, total communication cost in bytes (data + SNACK +
advertisement, to account for LR-Seluge's ``n - k`` extra SNACK bits), and
overall dissemination latency (time until every node holds the image).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Outcome of one simulated dissemination."""

    protocol: str
    completed: bool
    latency: float
    counters: Dict[str, int] = field(default_factory=dict)
    per_node_completion: Dict[int, float] = field(default_factory=dict)
    images_ok: Optional[bool] = None
    seed: int = 0

    # -- the paper's five metrics ------------------------------------------------

    @property
    def data_packets(self) -> int:
        return self.counters.get("tx_data", 0) + self.counters.get("tx_signature", 0)

    @property
    def snack_packets(self) -> int:
        return self.counters.get("tx_snack", 0)

    @property
    def adv_packets(self) -> int:
        return self.counters.get("tx_adv", 0)

    @property
    def total_bytes(self) -> int:
        return (
            self.counters.get("tx_data_bytes", 0)
            + self.counters.get("tx_signature_bytes", 0)
            + self.counters.get("tx_snack_bytes", 0)
            + self.counters.get("tx_adv_bytes", 0)
        )

    @property
    def data_bytes(self) -> int:
        return self.counters.get("tx_data_bytes", 0) + self.counters.get(
            "tx_signature_bytes", 0
        )

    def summary_row(self) -> Dict[str, float]:
        """The five paper metrics as a flat dict (for report tables)."""
        return {
            "data_pkts": self.data_packets,
            "snack_pkts": self.snack_packets,
            "adv_pkts": self.adv_packets,
            "total_bytes": self.total_bytes,
            "latency_s": round(self.latency, 2),
        }

    def __str__(self) -> str:  # pragma: no cover - convenience formatting
        status = "ok" if self.completed else "INCOMPLETE"
        return (
            f"{self.protocol}: {status} data={self.data_packets} "
            f"snack={self.snack_packets} adv={self.adv_packets} "
            f"bytes={self.total_bytes} latency={self.latency:.1f}s"
        )
