"""Canonical scenarios: the paper's one-hop and multi-hop setups.

One-hop (Section VI-B): a fully connected star — one sender, ``N`` local
receivers — with losses emulated at the application layer: every node drops
each received data/advertisement/SNACK packet independently with probability
``p``.  Collision modelling is off, exactly as in the paper's setup.

Multi-hop (Section VI-C): 15x15 mica2-style grids (tight/medium density)
with per-link loss probabilities from the propagation model and the CSMA
collision model enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.config import DelugeParams, ImageConfig, LRSelugeParams, ProtocolTiming, SelugeParams
from repro.core.image import CodeImage
from repro.experiments.metrics import RunResult
from repro.experiments.runner import CompletionTracker, run_network
from repro.faults.flash import NodeFlash
from repro.faults.generators import crash_reboot_churn, link_flap_churn
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.net.channel import (
    BernoulliLoss,
    CompositeLoss,
    GilbertElliottLoss,
    LossModel,
    PerLinkLoss,
)
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import (
    Topology,
    grid_topology,
    mica2_grid_medium,
    mica2_grid_tight,
    random_disk_topology,
    star_topology,
)
from repro.protocols.deluge import build_deluge_network
from repro.protocols.lr_seluge import build_lr_seluge_network
from repro.protocols.rateless import build_rateless_network
from repro.protocols.seluge import build_seluge_network
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.errors import ConfigError

__all__ = [
    "OneHopScenario",
    "MultiHopScenario",
    "FaultyGridScenario",
    "run_one_hop",
    "run_multihop",
    "run_faulty_grid",
    "build_protocol_network",
]

_BUILDERS = {
    "deluge": build_deluge_network,
    "seluge": build_seluge_network,
    "lr-seluge": build_lr_seluge_network,
    "rateless": build_rateless_network,
}


def make_params(
    protocol: str,
    image_size: int = 20 * 1024,
    k: int = 32,
    n: int = 48,
    kprime: int = 0,
    version: int = 2,
    timing: Optional[ProtocolTiming] = None,
):
    """Protocol parameter object with a shared image/timing configuration."""
    image = ImageConfig(image_size=image_size, version=version)
    timing = timing or ProtocolTiming()
    if protocol == "deluge" or protocol == "rateless":
        return DelugeParams(k=k, image=image, timing=timing)
    if protocol == "seluge":
        return SelugeParams(k=k, image=image, timing=timing)
    if protocol == "lr-seluge":
        return LRSelugeParams(k=k, n=n, kprime=kprime, image=image, timing=timing)
    raise ConfigError(f"unknown protocol {protocol!r}")


def build_protocol_network(
    protocol: str,
    sim: Simulator,
    radio: Radio,
    rngs: RngRegistry,
    trace: TraceRecorder,
    params,
    image: CodeImage,
    on_complete,
):
    """Dispatch to the right network builder; returns (base, nodes, pre)."""
    builder = _BUILDERS.get(protocol)
    if builder is None:
        raise ConfigError(f"unknown protocol {protocol!r}")
    return builder(
        sim, radio, rngs, trace, params, image=image, on_complete=on_complete
    )


@dataclass(frozen=True)
class OneHopScenario:
    """Section VI-B setup: one sender, N receivers, app-layer loss p."""

    protocol: str = "lr-seluge"
    loss_rate: float = 0.1
    receivers: int = 20
    image_size: int = 20 * 1024
    k: int = 32
    n: int = 48
    kprime: int = 0
    seed: int = 1
    max_time: float = 7200.0
    timing: Optional[ProtocolTiming] = None

    def with_protocol(self, protocol: str) -> "OneHopScenario":
        return replace(self, protocol=protocol)


def run_one_hop(
    scenario: OneHopScenario,
    sim: Optional[Simulator] = None,
    trace: Optional[TraceRecorder] = None,
    rngs: Optional[RngRegistry] = None,
) -> RunResult:
    """Simulate one one-hop dissemination and return its metrics.

    ``sim``/``trace`` may be supplied by observability callers (profiler
    installed, structured-event sink attached); defaults are fresh instances
    and the run is bit-identical either way.  ``rngs`` may likewise be
    injected (the sanitizer's tripwire registry) and must be seeded with
    ``scenario.seed`` to reproduce the default run.
    """
    rngs = rngs if rngs is not None else RngRegistry(scenario.seed)
    sim = sim if sim is not None else Simulator()
    trace = trace if trace is not None else TraceRecorder()
    topo = star_topology(scenario.receivers)
    loss = BernoulliLoss(scenario.loss_rate)
    radio = Radio(
        sim, topo, loss, rngs, trace, config=RadioConfig(collisions=False)
    )
    params = make_params(
        scenario.protocol,
        image_size=scenario.image_size,
        k=scenario.k,
        n=scenario.n,
        kprime=scenario.kprime,
        timing=scenario.timing,
    )
    image = CodeImage.synthetic(scenario.image_size, version=2, seed=scenario.seed)
    tracker = CompletionTracker(trace)
    base, nodes, pre = build_protocol_network(
        scenario.protocol, sim, radio, rngs, trace, params, image, tracker
    )
    base.start()
    return run_network(
        sim, trace, tracker, nodes, scenario.protocol,
        max_time=scenario.max_time, expected_image=image.data, seed=scenario.seed,
    )


@dataclass(frozen=True)
class MultiHopScenario:
    """Section VI-C setup: 15x15 mica2 grids with link-level losses."""

    protocol: str = "lr-seluge"
    topology: str = "tight"        # "tight" | "medium" | "grid:<rows>x<cols>:<spacing>"
    image_size: int = 20 * 1024
    k: int = 32
    n: int = 48
    kprime: int = 0
    seed: int = 1
    max_time: float = 14400.0
    ambient: bool = True           # meyer-heavy-style bursty ambient loss on top
    bursty_only: bool = False      # Gilbert-Elliott alone (ablation)
    timing: Optional[ProtocolTiming] = None

    def with_protocol(self, protocol: str) -> "MultiHopScenario":
        return replace(self, protocol=protocol)


def _build_topology(scenario: MultiHopScenario, rngs: RngRegistry) -> Topology:
    spec = scenario.topology
    if spec.startswith(("tight", "medium")):
        kind, _, dims = spec.partition(":")
        rows, cols = (15, 15) if not dims else (int(x) for x in dims.split("x"))
        build = mica2_grid_tight if kind == "tight" else mica2_grid_medium
        return build(rngs, rows=rows, cols=cols)
    if spec.startswith("grid:"):
        _, dims, spacing = spec.split(":")
        rows, cols = (int(x) for x in dims.split("x"))
        return grid_topology(rows, cols, spacing=float(spacing), rngs=rngs)
    if spec.startswith("random:"):
        # "random:<nodes>:<area-side-m>" — the TinyOS topology-tool analogue.
        _, n_nodes, side = spec.split(":")
        return random_disk_topology(int(n_nodes), float(side), rngs)
    raise ConfigError(f"unknown topology {spec!r}")


@dataclass(frozen=True)
class FaultyGridScenario:
    """A multi-hop grid under fault injection (crashes, churn, link flaps).

    Faults come from an explicit :class:`FaultPlan` and/or the stochastic
    generators: with ``mtbf`` set, every *receiver* (never the base station,
    whose image is the golden copy) crash-reboots with exponential
    MTBF/MTTR; with ``link_flap`` set, directed links flap Bernoulli-style.
    Every receiver gets a :class:`NodeFlash`, so reboots resume from the
    persisted page index.  Identical seed + plan reproduces an identical
    trace.
    """

    protocol: str = "lr-seluge"
    topology: str = "grid:4x4:3"
    image_size: int = 4096
    k: int = 8
    n: int = 12
    kprime: int = 0
    seed: int = 1
    max_time: float = 7200.0
    ambient: bool = False
    plan: Optional[FaultPlan] = None
    mtbf: Optional[float] = None      # mean seconds between crashes, per node
    mttr: float = 60.0                # mean seconds a crashed node stays down
    link_flap: float = 0.0            # Bernoulli down-probability per check
    flap_interval: float = 30.0       # seconds between flap checks
    flap_down_time: float = 15.0      # seconds a flapped link stays down
    churn_horizon: Optional[float] = None  # default: max_time / 2
    timing: Optional[ProtocolTiming] = None

    def with_protocol(self, protocol: str) -> "FaultyGridScenario":
        return replace(self, protocol=protocol)

    def fault_free(self) -> "FaultyGridScenario":
        """The same scenario with every fault source removed (baseline)."""
        return replace(self, plan=None, mtbf=None, link_flap=0.0)


def run_faulty_grid(
    scenario: FaultyGridScenario,
    trace: Optional[TraceRecorder] = None,
    sim: Optional[Simulator] = None,
    rngs: Optional[RngRegistry] = None,
) -> RunResult:
    """Simulate a grid dissemination under the scenario's fault model.

    Pass a ``TraceRecorder(keep_records=True)`` to capture the full fault /
    recovery event sequence (crash, reboot with resume unit, link churn);
    pass a ``sim`` to profile the event loop.  An injected ``rngs`` must be
    seeded with ``scenario.seed`` to reproduce the default run.
    """
    rngs = rngs if rngs is not None else RngRegistry(scenario.seed)
    sim = sim if sim is not None else Simulator()
    trace = trace if trace is not None else TraceRecorder()
    topo = _build_topology(scenario, rngs)
    loss: LossModel
    if scenario.ambient:
        loss = CompositeLoss(
            PerLinkLoss(topo.link_loss),
            GilbertElliottLoss(loss_good=0.05, loss_bad=0.5, mean_good=6.0, mean_bad=2.0),
        )
    else:
        loss = PerLinkLoss(topo.link_loss)
    radio = Radio(sim, topo, loss, rngs, trace, config=RadioConfig(collisions=True))
    params = make_params(
        scenario.protocol,
        image_size=scenario.image_size,
        k=scenario.k,
        n=scenario.n,
        kprime=scenario.kprime,
        timing=scenario.timing,
    )
    image = CodeImage.synthetic(scenario.image_size, version=2, seed=scenario.seed)
    tracker = CompletionTracker(trace)
    base, nodes, pre = build_protocol_network(
        scenario.protocol, sim, radio, rngs, trace, params, image, tracker
    )
    for node in nodes:
        node.flash = NodeFlash(node.node_id)

    plan = scenario.plan if scenario.plan is not None else FaultPlan()
    horizon = scenario.churn_horizon or scenario.max_time / 2.0
    if scenario.mtbf is not None:
        plan = plan.merge(crash_reboot_churn(
            rngs, [node.node_id for node in nodes],
            mtbf=scenario.mtbf, mttr=scenario.mttr, horizon=horizon,
        ))
    if scenario.link_flap > 0.0:
        links = sorted(
            (u, v) for u, nbrs in topo.neighbors.items() for v in nbrs
        )
        plan = plan.merge(link_flap_churn(
            rngs, links, p_flap=scenario.link_flap,
            down_time=scenario.flap_down_time,
            check_interval=scenario.flap_interval, horizon=horizon,
        ))
    injector = FaultInjector(sim, radio, trace, [base] + nodes, plan, rngs)
    injector.install()

    base.start()
    return run_network(
        sim, trace, tracker, nodes, scenario.protocol,
        max_time=scenario.max_time, expected_image=image.data, seed=scenario.seed,
    )


def run_multihop(
    scenario: MultiHopScenario,
    sim: Optional[Simulator] = None,
    trace: Optional[TraceRecorder] = None,
    rngs: Optional[RngRegistry] = None,
) -> RunResult:
    """Simulate a multi-hop dissemination over a grid and return metrics.

    An injected ``rngs`` must be seeded with ``scenario.seed`` to reproduce
    the default run.
    """
    rngs = rngs if rngs is not None else RngRegistry(scenario.seed)
    sim = sim if sim is not None else Simulator()
    trace = trace if trace is not None else TraceRecorder()
    topo = _build_topology(scenario, rngs)
    loss: LossModel
    if scenario.bursty_only:
        loss = GilbertElliottLoss()
    elif scenario.ambient:
        # Static link quality plus time-correlated ambient bursts — the
        # meyer-heavy environment the paper's TOSSIM runs sample.
        loss = CompositeLoss(
            PerLinkLoss(topo.link_loss),
            GilbertElliottLoss(loss_good=0.05, loss_bad=0.5, mean_good=6.0, mean_bad=2.0),
        )
    else:
        loss = PerLinkLoss(topo.link_loss)
    radio = Radio(sim, topo, loss, rngs, trace, config=RadioConfig(collisions=True))
    params = make_params(
        scenario.protocol,
        image_size=scenario.image_size,
        k=scenario.k,
        n=scenario.n,
        kprime=scenario.kprime,
        timing=scenario.timing,
    )
    image = CodeImage.synthetic(scenario.image_size, version=2, seed=scenario.seed)
    tracker = CompletionTracker(trace)
    base, nodes, pre = build_protocol_network(
        scenario.protocol, sim, radio, rngs, trace, params, image, tracker
    )
    base.start()
    return run_network(
        sim, trace, tracker, nodes, scenario.protocol,
        max_time=scenario.max_time, expected_image=image.data, seed=scenario.seed,
    )
