"""Regeneration of the paper's figures (Section VI-A/B).

Each function returns a :class:`FigureResult` whose rows mirror the series
the corresponding paper figure plots.  Sizes are parameters so benchmarks
can run scaled-down versions; the CLI (``python -m repro.experiments``)
runs the full-size defaults.

Every figure is a campaign: its simulations are gathered up front, executed
through the fault-tolerant executor (:mod:`repro.experiments.executor`), and
joined back into rows by content-derived task key.  Passing a
:class:`~repro.experiments.executor.CampaignConfig` (the CLI's ``--resume``
/ ``--task-timeout`` / ``--max-retries`` / ``--checkpoint-dir`` flags) makes
a figure run parallel, supervised, and resumable; the default config runs
cells inline with identical results.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.onehop import (
    ack_lr_expected_tx,
    seluge_page_expected_tx,
)
from repro.experiments.executor import (
    CampaignConfig,
    execute_scenarios,
    task_key,
)
from repro.experiments.metrics import RunResult
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import OneHopScenario, run_one_hop

__all__ = [
    "FigureResult",
    "fig3a",
    "fig3b",
    "fig4",
    "fig5",
    "fig6",
    "image_size_sweep",
    "mean_metrics",
]


@dataclass
class FigureResult:
    """Structured series for one regenerated figure."""

    name: str
    headers: List[str]
    rows: List[List[object]]
    notes: str = ""

    def report(self) -> str:
        text = format_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += f"\n{self.notes}"
        return text

    def column(self, header: str) -> List[object]:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def to_csv(self) -> str:
        """The series as CSV (plot with any external tool)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def to_json(self) -> str:
        """The series as a JSON document with metadata."""
        import json

        return json.dumps(
            {
                "name": self.name,
                "headers": self.headers,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=2,
        )

    def save(self, path) -> None:
        """Write CSV or JSON (by extension) through the atomic-write helper."""
        from pathlib import Path

        from repro.persist import atomic_write_text

        target = Path(path)
        if target.suffix == ".json":
            atomic_write_text(target, self.to_json())
        else:
            atomic_write_text(target, self.to_csv())


def mean_metrics(results: Sequence[RunResult]) -> Dict[str, float]:
    """Average the five paper metrics over repeated runs."""
    keys = ["data_pkts", "snack_pkts", "adv_pkts", "total_bytes", "latency_s"]
    rows = [r.summary_row() for r in results]
    return {k: statistics.mean(row[k] for row in rows) for k in keys}


def _last_page_tx(result: RunResult) -> int:
    """Data transmissions attributed to the image's last (pure) page."""
    units = [
        int(key.rsplit("_", 1)[1])
        for key in result.counters
        if key.startswith("tx_data_unit_")
    ]
    if not units:
        return 0
    last = max(units)
    return result.counters[f"tx_data_unit_{last}"]


def _execute_one_hop(
    scenarios: Sequence[OneHopScenario],
    campaign: Optional[CampaignConfig],
) -> Dict[str, RunResult]:
    """Run one-hop cells through the executor, keyed by content-derived key."""
    return execute_scenarios("one_hop", run_one_hop, scenarios, campaign)


def _gather(
    results: Dict[str, RunResult], scenarios: Sequence[OneHopScenario]
) -> List[RunResult]:
    """Join executor results back to a scenario group; quarantined cells drop."""
    keys = (task_key("one_hop", s) for s in scenarios)
    return [results[key] for key in keys if key in results]


def _mean_or_nan(values: Sequence[float]) -> float:
    return statistics.mean(values) if values else float("nan")


def _page_tx_scenarios(protocol: str, p: float, receivers: int,
                       image_size: int, seeds: Sequence[int]) -> List[OneHopScenario]:
    return [
        OneHopScenario(protocol=protocol, loss_rate=p, receivers=receivers,
                       image_size=image_size, seed=s)
        for s in seeds
    ]


def fig3a(
    loss_rates: Sequence[float] = (0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4),
    receivers: int = 20,
    image_size: int = 20 * 1024,
    seeds: Sequence[int] = (1, 2, 3),
    k: int = 32,
    n: int = 48,
    kprime: int = 34,
    campaign: Optional[CampaignConfig] = None,
) -> FigureResult:
    """Fig. 3(a): per-page data transmissions vs loss rate p.

    Analytical Seluge and ACK-based LR-Seluge curves alongside simulated
    Seluge and LR-Seluge (data packets of the image's last page).
    """
    groups = {
        (protocol, p): _page_tx_scenarios(protocol, p, receivers, image_size, seeds)
        for p in loss_rates
        for protocol in ("seluge", "lr-seluge")
    }
    results = _execute_one_hop(
        [s for group in groups.values() for s in group], campaign
    )

    def page_tx(protocol: str, p: float) -> float:
        runs = _gather(results, groups[(protocol, p)])
        return _mean_or_nan([_last_page_tx(r) for r in runs])

    rows = []
    for p in loss_rates:
        rows.append([
            p,
            round(seluge_page_expected_tx(k, receivers, p), 1),
            round(page_tx("seluge", p), 1),
            round(ack_lr_expected_tx(1, kprime, n, receivers, p), 1),
            round(page_tx("lr-seluge", p), 1),
        ])
    return FigureResult(
        name="Fig 3(a): per-page data transmissions vs loss rate p "
             f"(N={receivers})",
        headers=["p", "seluge_analysis", "seluge_sim", "ack_lr_analysis", "lr_sim"],
        rows=rows,
        notes="Expected shape: seluge_sim tracks seluge_analysis; "
              "lr_sim stays below ack_lr_analysis; LR well below Seluge at high p.",
    )


def fig3b(
    receiver_counts: Sequence[int] = (5, 10, 15, 20, 25, 30, 35, 40),
    p: float = 0.2,
    image_size: int = 20 * 1024,
    seeds: Sequence[int] = (1, 2, 3),
    k: int = 32,
    n: int = 48,
    kprime: int = 34,
    campaign: Optional[CampaignConfig] = None,
) -> FigureResult:
    """Fig. 3(b): per-page data transmissions vs number of receivers N."""
    groups = {
        (protocol, receivers): _page_tx_scenarios(
            protocol, p, receivers, image_size, seeds
        )
        for receivers in receiver_counts
        for protocol in ("seluge", "lr-seluge")
    }
    results = _execute_one_hop(
        [s for group in groups.values() for s in group], campaign
    )

    def page_tx(protocol: str, receivers: int) -> float:
        runs = _gather(results, groups[(protocol, receivers)])
        return _mean_or_nan([_last_page_tx(r) for r in runs])

    rows = []
    for receivers in receiver_counts:
        rows.append([
            receivers,
            round(seluge_page_expected_tx(k, receivers, p), 1),
            round(page_tx("seluge", receivers), 1),
            round(ack_lr_expected_tx(1, kprime, n, receivers, p), 1),
            round(page_tx("lr-seluge", receivers), 1),
        ])
    return FigureResult(
        name=f"Fig 3(b): per-page data transmissions vs receivers N (p={p})",
        headers=["N", "seluge_analysis", "seluge_sim", "ack_lr_analysis", "lr_sim"],
        rows=rows,
        notes="Expected shape: Seluge grows visibly with N; LR-Seluge is "
              "much less sensitive to N.",
    )


_METRIC_HEADERS = ["data_pkts", "snack_pkts", "adv_pkts", "total_bytes", "latency_s"]


def _metric_cells(runs: Sequence[RunResult]) -> List[object]:
    """The five averaged metrics, or ``nan`` cells if every seed quarantined."""
    if not runs:
        return [float("nan")] * len(_METRIC_HEADERS)
    metrics = mean_metrics(runs)
    return [round(metrics[h], 1) for h in _METRIC_HEADERS]


def _sweep_rows(scenarios: Sequence[Tuple[object, OneHopScenario]],
                seeds: Sequence[int],
                campaign: Optional[CampaignConfig] = None) -> List[List[object]]:
    groups = {
        (x, protocol): [
            OneHopScenario(
                **{**base_scenario.__dict__, "protocol": protocol, "seed": s}
            )
            for s in seeds
        ]
        for x, base_scenario in scenarios
        for protocol in ("seluge", "lr-seluge")
    }
    results = _execute_one_hop(
        [s for group in groups.values() for s in group], campaign
    )
    rows: List[List[object]] = []
    for x, _base_scenario in scenarios:
        row: List[object] = [x]
        for protocol in ("seluge", "lr-seluge"):
            row.extend(_metric_cells(_gather(results, groups[(x, protocol)])))
        rows.append(row)
    return rows


def _two_protocol_headers(x_name: str) -> List[str]:
    return (
        [x_name]
        + [f"seluge_{h}" for h in _METRIC_HEADERS]
        + [f"lr_{h}" for h in _METRIC_HEADERS]
    )


def fig4(
    loss_rates: Sequence[float] = (0.001, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4),
    receivers: int = 20,
    image_size: int = 20 * 1024,
    seeds: Sequence[int] = (1, 2, 3),
    campaign: Optional[CampaignConfig] = None,
) -> FigureResult:
    """Fig. 4(a-e): the five metrics vs packet-loss rate p (one hop, N=20)."""
    scenarios = [
        (p, OneHopScenario(loss_rate=p, receivers=receivers, image_size=image_size))
        for p in loss_rates
    ]
    return FigureResult(
        name=f"Fig 4: one-hop metrics vs loss rate p (N={receivers})",
        headers=_two_protocol_headers("p"),
        rows=_sweep_rows(scenarios, seeds, campaign),
        notes="Expected shape: LR-Seluge slightly worse for p <= 0.01, "
              "better on all five metrics beyond; ~25-45% savings at p=0.4.",
    )


def fig5(
    receiver_counts: Sequence[int] = (5, 10, 15, 20, 25, 30, 35, 40),
    p: float = 0.1,
    image_size: int = 20 * 1024,
    seeds: Sequence[int] = (1, 2, 3),
    campaign: Optional[CampaignConfig] = None,
) -> FigureResult:
    """Fig. 5(a-e): the five metrics vs node density N (one hop, p=0.1)."""
    scenarios = [
        (n_recv, OneHopScenario(loss_rate=p, receivers=n_recv, image_size=image_size))
        for n_recv in receiver_counts
    ]
    return FigureResult(
        name=f"Fig 5: one-hop metrics vs receivers N (p={p})",
        headers=_two_protocol_headers("N"),
        rows=_sweep_rows(scenarios, seeds, campaign),
        notes="Expected shape: Seluge's costs grow clearly with N; "
              "LR-Seluge is much flatter, and its latency does not grow.",
    )


def image_size_sweep(
    sizes_kib: Sequence[int] = (5, 10, 20, 40),
    p: float = 0.2,
    receivers: int = 20,
    seeds: Sequence[int] = (1, 2),
    campaign: Optional[CampaignConfig] = None,
) -> FigureResult:
    """Section VI-C's final claim: LR-Seluge's advantage holds across image sizes."""
    groups = {
        (size_kib, protocol): [
            OneHopScenario(protocol=protocol, loss_rate=p, receivers=receivers,
                           image_size=size_kib * 1024, seed=s)
            for s in seeds
        ]
        for size_kib in sizes_kib
        for protocol in ("seluge", "lr-seluge")
    }
    results = _execute_one_hop(
        [s for group in groups.values() for s in group], campaign
    )
    rows: List[List[object]] = []
    for size_kib in sizes_kib:
        row: List[object] = [size_kib]
        per_protocol: Dict[str, Dict[str, float]] = {}
        for protocol in ("seluge", "lr-seluge"):
            runs = _gather(results, groups[(size_kib, protocol)])
            if runs:
                metrics = mean_metrics(runs)
                per_protocol[protocol] = metrics
                row.extend([round(metrics["data_pkts"], 1),
                            round(metrics["total_bytes"], 1),
                            round(metrics["latency_s"], 1)])
            else:
                row.extend([float("nan")] * 3)
        if len(per_protocol) == 2 and per_protocol["seluge"]["total_bytes"] > 0:
            saving = 100.0 * (1.0 - per_protocol["lr-seluge"]["total_bytes"]
                              / per_protocol["seluge"]["total_bytes"])
            row.append(f"{saving:+.0f}%")
        else:
            row.append("n/a")
        rows.append(row)
    return FigureResult(
        name=f"Image-size sweep (p={p}, N={receivers})",
        headers=["KiB", "sel_data", "sel_bytes", "sel_lat",
                 "lr_data", "lr_bytes", "lr_lat", "lr_saving"],
        rows=rows,
        notes="Expected shape: the relative LR-Seluge saving is roughly "
              "size-independent once the image spans several pages.",
    )


def fig6(
    rates_n: Sequence[int] = (34, 40, 48, 56, 64, 80),
    loss_rates: Sequence[float] = (0.1, 0.3),
    receivers: int = 20,
    image_size: int = 20 * 1024,
    k: int = 32,
    seeds: Sequence[int] = (1, 2, 3),
    campaign: Optional[CampaignConfig] = None,
) -> FigureResult:
    """Fig. 6(a-e): LR-Seluge's five metrics vs erasure rate n/k (k=32)."""
    groups = {
        (p, n): [
            OneHopScenario(protocol="lr-seluge", loss_rate=p, receivers=receivers,
                           image_size=image_size, n=n, seed=s)
            for s in seeds
        ]
        for p in loss_rates
        for n in rates_n
    }
    results = _execute_one_hop(
        [s for group in groups.values() for s in group], campaign
    )
    rows: List[List[object]] = []
    for p in loss_rates:
        for n in rates_n:
            rows.append(
                [p, n, round(n / k, 2)]
                + _metric_cells(_gather(results, groups[(p, n)]))
            )
    return FigureResult(
        name=f"Fig 6: LR-Seluge metrics vs erasure rate n/k (k={k})",
        headers=["p", "n", "rate"] + _METRIC_HEADERS,
        rows=rows,
        notes="Expected shape: a limited amount of redundancy cuts SNACK and "
              "data costs sharply; pushing n/k higher increases costs slowly "
              "again (shorter image slices per page -> more pages).",
    )
