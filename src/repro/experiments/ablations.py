"""Ablations of LR-Seluge design choices (DESIGN.md Section 6).

* **Scheduler** (E10): the greedy round-robin tracking table vs a
  Deluge-style union policy inside the otherwise unchanged LR-Seluge.
* **Reception overhead**: declared ``k'`` of ``k`` (MDS), ``k+2`` (the
  paper's Tornado-style assumption), and larger.
* **Burstiness**: iid app-layer losses vs a Gilbert-Elliott channel with
  the same average loss.
"""

from __future__ import annotations

import statistics
from typing import List, Sequence

from repro.core.image import CodeImage
from repro.experiments.figures import FigureResult, mean_metrics
from repro.experiments.runner import CompletionTracker, run_network
from repro.experiments.scenarios import (
    OneHopScenario,
    build_protocol_network,
    make_params,
    run_one_hop,
)
from repro.net.channel import BernoulliLoss, GilbertElliottLoss
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import star_topology
from repro.protocols.lr_seluge import LRSelugeNode
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

__all__ = ["ablate_scheduler", "ablate_overhead", "ablate_burstiness"]

_METRIC_HEADERS = ["data_pkts", "snack_pkts", "adv_pkts", "total_bytes", "latency_s"]


def _run_lr_with_scheduler(
    scheduler: str, p: float, receivers: int, image_size: int, seed: int
):
    rngs = RngRegistry(seed)
    sim = Simulator()
    trace = TraceRecorder()
    topo = star_topology(receivers)
    radio = Radio(sim, topo, BernoulliLoss(p), rngs, trace,
                  config=RadioConfig(collisions=False))
    params = make_params("lr-seluge", image_size=image_size)
    image = CodeImage.synthetic(image_size, version=2, seed=seed)
    tracker = CompletionTracker(trace)
    base, nodes, pre = build_protocol_network(
        "lr-seluge", sim, radio, rngs, trace, params, image, tracker
    )
    for node in [base] + nodes:
        node.scheduler_kind = scheduler
    base.start()
    return run_network(sim, trace, tracker, nodes, f"lr-{scheduler}",
                       max_time=7200.0, expected_image=image.data, seed=seed)


def ablate_scheduler(
    p: float = 0.2,
    receivers: int = 20,
    image_size: int = 20 * 1024,
    seeds: Sequence[int] = (1, 2, 3),
) -> FigureResult:
    """Greedy round-robin vs union TX policy inside LR-Seluge (E10)."""
    rows: List[List[object]] = []
    for scheduler in ("tracking", "union"):
        runs = [
            _run_lr_with_scheduler(scheduler, p, receivers, image_size, s)
            for s in seeds
        ]
        metrics = mean_metrics(runs)
        rows.append([scheduler] + [round(metrics[h], 1) for h in _METRIC_HEADERS])
    return FigureResult(
        name=f"Ablation: LR-Seluge TX scheduler (p={p}, N={receivers})",
        headers=["scheduler"] + _METRIC_HEADERS,
        rows=rows,
        notes="Expected: the tracking-table scheduler transmits no more (and "
              "under concurrent requests, fewer) data packets than the union rule.",
    )


def ablate_overhead(
    p: float = 0.2,
    receivers: int = 20,
    image_size: int = 20 * 1024,
    kprimes: Sequence[int] = (32, 34, 38),
    seeds: Sequence[int] = (1, 2),
) -> FigureResult:
    """Declared reception threshold k' (code overhead emulation)."""
    rows: List[List[object]] = []
    for kprime in kprimes:
        runs = [
            run_one_hop(OneHopScenario(
                protocol="lr-seluge", loss_rate=p, receivers=receivers,
                image_size=image_size, kprime=kprime, seed=s,
            ))
            for s in seeds
        ]
        metrics = mean_metrics(runs)
        rows.append([kprime] + [round(metrics[h], 1) for h in _METRIC_HEADERS])
    return FigureResult(
        name=f"Ablation: declared reception threshold k' (k=32, n=48, p={p})",
        headers=["kprime"] + _METRIC_HEADERS,
        rows=rows,
        notes="k'=32 is a true MDS code; the paper assumes k' > k "
              "(Tornado-style reception overhead).",
    )


def ablate_burstiness(
    receivers: int = 20,
    image_size: int = 20 * 1024,
    seeds: Sequence[int] = (1, 2),
) -> FigureResult:
    """iid losses vs bursty Gilbert-Elliott losses with the same mean (~0.2)."""
    rows: List[List[object]] = []
    ge = dict(loss_good=0.05, loss_bad=0.65, mean_good=6.0, mean_bad=2.0)
    mean_loss = (ge["mean_good"] * ge["loss_good"] + ge["mean_bad"] * ge["loss_bad"]) / (
        ge["mean_good"] + ge["mean_bad"]
    )
    def make_model(label: str):
        # Gilbert-Elliott carries per-link state, so each run gets its own.
        if label.startswith("bursty"):
            return GilbertElliottLoss(**ge)
        return BernoulliLoss(mean_loss)

    for protocol in ("seluge", "lr-seluge"):
        for label in (f"iid(p={mean_loss:.2f})", "bursty(GE)"):
            runs = []
            for seed in seeds:
                rngs = RngRegistry(seed)
                sim = Simulator()
                trace = TraceRecorder()
                topo = star_topology(receivers)
                radio = Radio(sim, topo, make_model(label), rngs, trace,
                              config=RadioConfig(collisions=False))
                params = make_params(protocol, image_size=image_size)
                image = CodeImage.synthetic(image_size, version=2, seed=seed)
                tracker = CompletionTracker(trace)
                base, nodes, pre = build_protocol_network(
                    protocol, sim, radio, rngs, trace, params, image, tracker
                )
                base.start()
                runs.append(run_network(sim, trace, tracker, nodes, protocol,
                                        max_time=14400.0, expected_image=image.data))
            metrics = mean_metrics(runs)
            rows.append([protocol, label]
                        + [round(metrics[h], 1) for h in _METRIC_HEADERS])
    return FigureResult(
        name="Ablation: iid vs bursty losses at equal mean loss",
        headers=["protocol", "channel"] + _METRIC_HEADERS,
        rows=rows,
        notes="Bursty channels hurt both protocols; LR-Seluge's redundancy "
              "absorbs short bursts, Seluge must re-request specific packets.",
    )
