"""Deterministic retry backoff for the campaign executor.

Transient task failures (a worker killed by the OS, a wall-clock timeout)
are retried with a decelerating, jittered delay: each successive attempt
waits geometrically longer, capped at ``max_s``, with a small multiplicative
jitter so a batch of tasks that failed together does not retry in lockstep.

The jitter is **deterministic**: it is drawn from a stream derived (via
:func:`repro.sim.rng.derived_stream`) purely from the task key and the
attempt number, never from wall time or process state.  Re-running or
resuming a campaign therefore reproduces the exact same backoff schedule —
the same determinism contract replint enforces for the simulations
themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.rng import derived_stream

__all__ = ["BackoffPolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Decelerating jittered retry schedule.

    ``delay(key, attempt)`` for attempt 0, 1, 2, ... is
    ``min(base_s * factor**attempt, max_s)`` plus a jitter drawn uniformly
    from ``[0, jitter_frac * that]``.
    """

    base_s: float = 0.1
    factor: float = 2.0
    max_s: float = 30.0
    jitter_frac: float = 0.25

    def __post_init__(self) -> None:
        if self.base_s < 0 or self.max_s < 0:
            raise ConfigError("backoff delays must be non-negative")
        if self.factor < 1.0:
            raise ConfigError(
                f"backoff factor {self.factor} would accelerate retries"
            )
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ConfigError("jitter_frac must be within [0, 1]")

    def delay(self, task_key: str, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based) of a task."""
        raw = min(self.base_s * (self.factor ** attempt), self.max_s)
        if self.jitter_frac == 0.0 or raw == 0.0:
            return raw
        rng = derived_stream("executor-backoff", task_key, attempt)
        return raw * (1.0 + self.jitter_frac * rng.random())

    def schedule(self, task_key: str, retries: int) -> "list[float]":
        """The full delay sequence for ``retries`` retries of one task."""
        return [self.delay(task_key, attempt) for attempt in range(retries)]
