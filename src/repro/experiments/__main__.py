"""CLI: regenerate the paper's figures and tables.

Usage::

    python -m repro.experiments fig3a
    python -m repro.experiments fig4 --quick
    python -m repro.experiments table2
    python -m repro.experiments all --quick

``--quick`` runs scaled-down versions (smaller image, fewer seeds, smaller
grids) that finish in tens of seconds; full-size runs can take minutes for
the one-hop figures and longer for the 15x15 grids.

Every target runs as a fault-tolerant campaign (see
:mod:`repro.experiments.executor`):

* ``--processes N`` runs cells in N supervised worker processes;
* ``--task-timeout S`` kills and retries cells that exceed S wall seconds;
* ``--max-retries R`` bounds attempts before a cell is quarantined;
* ``--checkpoint-dir DIR`` journals completed cells so a killed run can be
  restarted with ``--resume`` and produce byte-identical output;
* ``--manifest FILE`` writes a campaign manifest embedding the per-task
  attempt history.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import figures, tables
from repro.experiments.ablations import ablate_burstiness, ablate_overhead, ablate_scheduler
from repro.experiments.executor import CampaignConfig
from repro.experiments.reporting import stopwatch


def _fig3a(quick, campaign):
    if quick:
        return figures.fig3a(loss_rates=(0.1, 0.2, 0.3, 0.4), receivers=10,
                             image_size=6 * 1024, seeds=(1,), campaign=campaign)
    return figures.fig3a(campaign=campaign)


def _fig3b(quick, campaign):
    if quick:
        return figures.fig3b(receiver_counts=(5, 10, 20, 30), image_size=6 * 1024,
                             seeds=(1,), campaign=campaign)
    return figures.fig3b(campaign=campaign)


def _fig4(quick, campaign):
    if quick:
        return figures.fig4(loss_rates=(0.01, 0.1, 0.3), receivers=10,
                            image_size=6 * 1024, seeds=(1,), campaign=campaign)
    return figures.fig4(campaign=campaign)


def _fig5(quick, campaign):
    if quick:
        return figures.fig5(receiver_counts=(5, 15, 30), image_size=6 * 1024,
                            seeds=(1,), campaign=campaign)
    return figures.fig5(campaign=campaign)


def _fig6(quick, campaign):
    if quick:
        return figures.fig6(rates_n=(34, 48, 64), loss_rates=(0.1,),
                            image_size=6 * 1024, seeds=(1,), campaign=campaign)
    return figures.fig6(campaign=campaign)


def _table2(quick, campaign):
    if quick:
        return tables.table2(image_size=6 * 1024, seeds=(1,), rows=8, cols=8,
                             campaign=campaign)
    return tables.table2(campaign=campaign)


def _table3(quick, campaign):
    if quick:
        return tables.table3(image_size=6 * 1024, seeds=(1,), rows=8, cols=8,
                             campaign=campaign)
    return tables.table3(campaign=campaign)


def _ablations(quick, campaign):
    # Ablations compare matched pairs in-process; they run outside the
    # campaign executor (each is a handful of short cells).
    size = 6 * 1024 if quick else 20 * 1024
    seeds = (1,) if quick else (1, 2)
    results = [
        ablate_scheduler(image_size=size, seeds=seeds),
        ablate_overhead(image_size=size, seeds=seeds),
        ablate_burstiness(image_size=size, seeds=seeds),
    ]
    return results


def _resilience(quick, campaign):
    from repro.experiments import resilience

    if quick:
        return resilience.run_resilience(resilience.quick_grid(), campaign=campaign)
    return resilience.run_resilience(resilience.paper_grid(), campaign=campaign)


_TARGETS = {
    "fig3a": _fig3a,
    "resilience": _resilience,
    "fig3b": _fig3b,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "table2": _table2,
    "table3": _table3,
    "ablations": _ablations,
}


def _campaign_from_args(args) -> CampaignConfig:
    return CampaignConfig(
        processes=args.processes,
        task_timeout_s=args.task_timeout,
        max_retries=args.max_retries,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )


def _write_campaign_manifest(path, target: str, campaign: CampaignConfig) -> None:
    from repro.obs.manifest import RunManifest

    merged = {
        "total": 0, "completed": 0, "resumed": 0,
        "retried": 0, "quarantined": 0, "tasks": {},
    }
    for report in campaign.reports:
        d = report.to_dict()
        for key in ("total", "completed", "resumed", "retried", "quarantined"):
            merged[key] += d[key]
        merged["tasks"].update(d["tasks"])
    manifest = RunManifest(
        tool="repro.experiments",
        config={
            "target": target,
            "processes": campaign.processes,
            "task_timeout_s": campaign.task_timeout_s,
            "max_retries": campaign.max_retries,
            "checkpoint_dir": (
                str(campaign.checkpoint_dir) if campaign.checkpoint_dir else None
            ),
            "resume": campaign.resume,
        },
        campaign=merged,
    )
    manifest.write(path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the LR-Seluge paper's figures and tables.",
    )
    parser.add_argument("target", choices=sorted(_TARGETS) + ["all"])
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down sizes for a fast check")
    parser.add_argument("--export", metavar="DIR", default=None,
                        help="also write each series as CSV into DIR")
    parser.add_argument("--processes", type=int, default=None, metavar="N",
                        help="run cells in N supervised worker processes")
    parser.add_argument("--task-timeout", type=float, default=None, metavar="S",
                        help="kill and retry cells exceeding S wall seconds")
    parser.add_argument("--max-retries", type=int, default=2, metavar="R",
                        help="attempts before a cell is quarantined (default 2)")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="journal completed cells into DIR (crash-safe)")
    parser.add_argument("--resume", action="store_true",
                        help="skip cells already journalled in --checkpoint-dir")
    parser.add_argument("--manifest", metavar="FILE", default=None,
                        help="write a campaign manifest (attempt histories)")
    parser.add_argument("--scorecard-out", metavar="FILE", default=None,
                        help="write the resilience scorecard JSON to FILE")
    args = parser.parse_args(argv)

    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")

    campaign = _campaign_from_args(args)
    names = sorted(_TARGETS) if args.target == "all" else [args.target]
    exit_code = 0
    for name in names:
        with stopwatch() as elapsed:
            result = _TARGETS[name](args.quick, campaign)
        results = result if isinstance(result, list) else [result]
        for i, r in enumerate(results):
            print(r.report())
            print()
            from repro.experiments.resilience import Scorecard

            if isinstance(r, Scorecard):
                if args.scorecard_out:
                    r.save(args.scorecard_out)
                    print(f"[scorecard written to {args.scorecard_out}]")
                if not r.ok:
                    # The adversary gate: invariant violations or missing
                    # cells fail the run even though the table still prints.
                    exit_code = 1
            if args.export:
                from pathlib import Path

                directory = Path(args.export)
                directory.mkdir(parents=True, exist_ok=True)
                suffix = f"_{i}" if len(results) > 1 else ""
                r.save(directory / f"{name}{suffix}.csv")
        if campaign.reports:
            print(f"[campaign: {campaign.reports[-1].summary()}]")
        print(f"[{name} regenerated in {elapsed():.1f}s]")
        print()
    if args.manifest:
        _write_campaign_manifest(args.manifest, args.target, campaign)
        print(f"[campaign manifest written to {args.manifest}]")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
