"""CLI: regenerate the paper's figures and tables.

Usage::

    python -m repro.experiments fig3a
    python -m repro.experiments fig4 --quick
    python -m repro.experiments table2
    python -m repro.experiments all --quick

``--quick`` runs scaled-down versions (smaller image, fewer seeds, smaller
grids) that finish in tens of seconds; full-size runs can take minutes for
the one-hop figures and longer for the 15x15 grids.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import figures, tables
from repro.experiments.ablations import ablate_burstiness, ablate_overhead, ablate_scheduler
from repro.experiments.reporting import stopwatch


def _fig3a(quick: bool):
    if quick:
        return figures.fig3a(loss_rates=(0.1, 0.2, 0.3, 0.4), receivers=10,
                             image_size=6 * 1024, seeds=(1,))
    return figures.fig3a()


def _fig3b(quick: bool):
    if quick:
        return figures.fig3b(receiver_counts=(5, 10, 20, 30), image_size=6 * 1024,
                             seeds=(1,))
    return figures.fig3b()


def _fig4(quick: bool):
    if quick:
        return figures.fig4(loss_rates=(0.01, 0.1, 0.3), receivers=10,
                            image_size=6 * 1024, seeds=(1,))
    return figures.fig4()


def _fig5(quick: bool):
    if quick:
        return figures.fig5(receiver_counts=(5, 15, 30), image_size=6 * 1024,
                            seeds=(1,))
    return figures.fig5()


def _fig6(quick: bool):
    if quick:
        return figures.fig6(rates_n=(34, 48, 64), loss_rates=(0.1,),
                            image_size=6 * 1024, seeds=(1,))
    return figures.fig6()


def _table2(quick: bool):
    if quick:
        return tables.table2(image_size=6 * 1024, seeds=(1,), rows=8, cols=8)
    return tables.table2()


def _table3(quick: bool):
    if quick:
        return tables.table3(image_size=6 * 1024, seeds=(1,), rows=8, cols=8)
    return tables.table3()


def _ablations(quick: bool):
    size = 6 * 1024 if quick else 20 * 1024
    seeds = (1,) if quick else (1, 2)
    results = [
        ablate_scheduler(image_size=size, seeds=seeds),
        ablate_overhead(image_size=size, seeds=seeds),
        ablate_burstiness(image_size=size, seeds=seeds),
    ]
    return results


_TARGETS = {
    "fig3a": _fig3a,
    "fig3b": _fig3b,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "table2": _table2,
    "table3": _table3,
    "ablations": _ablations,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the LR-Seluge paper's figures and tables.",
    )
    parser.add_argument("target", choices=sorted(_TARGETS) + ["all"])
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down sizes for a fast check")
    parser.add_argument("--export", metavar="DIR", default=None,
                        help="also write each series as CSV into DIR")
    args = parser.parse_args(argv)

    names = sorted(_TARGETS) if args.target == "all" else [args.target]
    for name in names:
        with stopwatch() as elapsed:
            result = _TARGETS[name](args.quick)
        results = result if isinstance(result, list) else [result]
        for i, r in enumerate(results):
            print(r.report())
            print()
            if args.export:
                from pathlib import Path

                directory = Path(args.export)
                directory.mkdir(parents=True, exist_ok=True)
                suffix = f"_{i}" if len(results) > 1 else ""
                r.save(directory / f"{name}{suffix}.csv")
        print(f"[{name} regenerated in {elapsed():.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
