"""The resilience scorecard: completion under attack, with and without defenses.

One :class:`ResilienceGrid` names an attack × protocol × defense × seed
campaign over :func:`~repro.experiments.adversarial.run_adversarial` cells.
Every ``(protocol, defense, seed)`` combination also runs an attack-free
baseline, so each attacked cell can report *inflation* ratios — latency and
packet cost relative to the same network left alone — instead of raw numbers
whose scale depends on the topology.

The grid executes through the fault-tolerant campaign executor
(:mod:`repro.experiments.executor`): cells checkpoint, retry, and resume
like any other sweep, and results join back by content-derived task key.
The resulting :class:`Scorecard` renders a text table (``report()``),
serialises to JSON (``save()``), and carries a CI gate: ``ok`` is False
whenever any cell saw a trace-invariant violation or was quarantined by
the executor.

Attack presets intentionally include the two legacy volumetric attacks
(bogus data, denial-of-receipt) next to the four engine-native ones, so the
scorecard doubles as a regression table for the pre-existing defenses
(per-packet authentication, the SNACK flood guard).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.attacks import AttackSpec
from repro.errors import ConfigError
from repro.experiments.adversarial import AdversarialScenario, run_adversarial
from repro.experiments.executor import CampaignConfig, execute_scenarios, task_key
from repro.experiments.metrics import RunResult
from repro.persist import atomic_write_json
from repro.protocols.defense import DefenseConfig

__all__ = [
    "ATTACK_PRESETS",
    "DEFENSE_PRESETS",
    "ResilienceGrid",
    "ScorecardRow",
    "Scorecard",
    "run_resilience",
    "quick_grid",
    "paper_grid",
]

#: Named attack loadouts.  ``none`` is the baseline every grid adds
#: implicitly; the other entries are single-adversary plans (the plan form
#: still composes — a grid may pass multi-spec tuples of its own).
ATTACK_PRESETS: Dict[str, Tuple[AttackSpec, ...]] = {
    "none": (),
    "bogus-data": (AttackSpec(kind="bogus-data", start=0.5, period=0.3),),
    "dor": (AttackSpec(kind="denial-of-receipt", start=0.5, period=0.4),),
    "jammer": (AttackSpec(kind="reactive-jammer", start=0.5, period=0.5,
                          params={"duty": 0.25}),),
    "greyhole": (AttackSpec(kind="greyhole", start=0.5, period=1.0,
                            params={"drop_rate": 0.9}),),
    "replay": (AttackSpec(kind="replay", start=0.5, period=0.3),),
    "sybil": (AttackSpec(kind="sybil-snack", start=0.5, period=0.3),),
}

#: Defense columns: ``none``, everything, and one ablation per flag.
DEFENSE_PRESETS: Tuple[str, ...] = (
    "none", "all", "rate_limit", "backoff", "replay_filter", "stall_watchdog",
)


@dataclass(frozen=True)
class ResilienceGrid:
    """The campaign axes plus the shared network shape of every cell."""

    protocols: Tuple[str, ...] = ("lr-seluge",)
    attacks: Tuple[str, ...] = ("jammer", "greyhole", "replay", "sybil")
    defenses: Tuple[str, ...] = ("none", "all")
    topology: str = "star:8"
    loss_rate: float = 0.05
    image_size: int = 4096
    k: int = 8
    n: int = 12
    kprime: int = 0
    seeds: Tuple[int, ...] = (1,)
    max_time: float = 3600.0

    def __post_init__(self) -> None:
        for name in self.attacks:
            if name == "none":
                raise ConfigError("'none' baselines are added implicitly")
            if name not in ATTACK_PRESETS:
                raise ConfigError(
                    f"unknown attack preset {name!r}; "
                    f"known: {sorted(ATTACK_PRESETS)}")
        for spec in self.defenses:
            DefenseConfig.from_flags(spec)  # raises ConfigError on typos

    def scenario(self, protocol: str, attack: str, defense: str,
                 seed: int) -> AdversarialScenario:
        """The fully specified cell for one grid coordinate."""
        return AdversarialScenario(
            protocol=protocol,
            topology=self.topology,
            loss_rate=self.loss_rate,
            image_size=self.image_size,
            k=self.k,
            n=self.n,
            kprime=self.kprime,
            seed=seed,
            max_time=self.max_time,
            attacks=ATTACK_PRESETS[attack],
            defense=DefenseConfig.from_flags(defense),
            label=f"{protocol}/{attack}/{defense}/s{seed}",
        )


def quick_grid() -> ResilienceGrid:
    """A fast smoke grid (CI's ``adversary-smoke`` job): one small star."""
    return ResilienceGrid(topology="star:5", image_size=2048, k=4, n=6,
                          max_time=1800.0)


def paper_grid() -> ResilienceGrid:
    """The acceptance grid: a 7x7 multi-hop lattice, all four new attacks."""
    return ResilienceGrid(topology="grid:7x7:3", max_time=7200.0)


@dataclass
class ScorecardRow:
    """One (protocol, attack, defense) aggregate over the seed axis."""

    protocol: str
    attack: str
    defense: str
    runs: int                    # cells that produced a result
    missing: int                 # quarantined / absent cells
    completion_rate: float       # mean fraction of receivers completing
    latency: Optional[float]     # mean completion latency (completed runs)
    latency_x: Optional[float]   # vs the matching attack-free baseline
    cost_x: Optional[float]      # total-bytes inflation vs baseline
    injected: int                # attacker frames on the air
    delivered: int               # attacker frames reaching a victim radio
    auth_drops: int              # injected data rejected by authentication
    violations: int              # trace-invariant violations

    def to_dict(self) -> dict:
        return asdict(self)


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def _aggregate(runs: List[RunResult]) -> Tuple[float, Optional[float], float, int, int, int, int]:
    completion = _mean([r.completion_rate for r in runs]) or 0.0
    latency = _mean([r.latency for r in runs if r.completed])
    mean_bytes = _mean([float(r.total_bytes) for r in runs]) or 0.0
    injected = sum(r.counters.get("adv_frames_injected", 0) for r in runs)
    delivered = sum(r.counters.get("adv_frames_delivered", 0) for r in runs)
    auth_drops = sum(r.counters.get("adv_auth_drops", 0) for r in runs)
    violations = sum(r.counters.get("invariant_violations", 0) for r in runs)
    return completion, latency, mean_bytes, injected, delivered, auth_drops, violations


@dataclass
class Scorecard:
    """Joined, ratio-normalised results of one resilience campaign."""

    grid: ResilienceGrid
    rows: List[ScorecardRow] = field(default_factory=list)

    @property
    def missing(self) -> int:
        return sum(row.missing for row in self.rows)

    @property
    def violations(self) -> int:
        return sum(row.violations for row in self.rows)

    @property
    def ok(self) -> bool:
        """The CI gate: every cell ran and no trace invariant was violated."""
        return self.missing == 0 and self.violations == 0

    def row(self, protocol: str, attack: str, defense: str) -> ScorecardRow:
        for r in self.rows:
            if (r.protocol, r.attack, r.defense) == (protocol, attack, defense):
                return r
        raise KeyError((protocol, attack, defense))

    def report(self) -> str:
        header = (f"{'protocol':<10} {'attack':<11} {'defense':<15} "
                  f"{'compl':>6} {'latency':>8} {'lat_x':>6} {'cost_x':>6} "
                  f"{'inject':>7} {'deliver':>8} {'viol':>4}")
        lines = [f"resilience scorecard — {self.grid.topology}, "
                 f"image {self.grid.image_size}B, seeds {list(self.grid.seeds)}",
                 header, "-" * len(header)]
        for r in self.rows:
            lat = f"{r.latency:.1f}" if r.latency is not None else "-"
            lat_x = f"{r.latency_x:.2f}" if r.latency_x is not None else "-"
            cost_x = f"{r.cost_x:.2f}" if r.cost_x is not None else "-"
            lines.append(
                f"{r.protocol:<10} {r.attack:<11} {r.defense:<15} "
                f"{r.completion_rate:>6.2f} {lat:>8} {lat_x:>6} {cost_x:>6} "
                f"{r.injected:>7} {r.delivered:>8} {r.violations:>4}")
        verdict = "OK" if self.ok else (
            f"FAIL ({self.violations} invariant violation(s), "
            f"{self.missing} missing cell(s))")
        lines.append(f"gate: {verdict}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "grid": asdict(self.grid),
            "rows": [r.to_dict() for r in self.rows],
            "missing": self.missing,
            "violations": self.violations,
            "ok": self.ok,
        }

    def save(self, path) -> None:
        atomic_write_json(path, self.to_dict())


def run_resilience(
    grid: Optional[ResilienceGrid] = None,
    campaign: Optional[CampaignConfig] = None,
) -> Scorecard:
    """Execute the grid through the campaign executor and join the scorecard.

    Baselines are ordinary cells: they checkpoint and resume like every
    attacked cell, and the join tolerates a quarantined baseline (ratio
    columns degrade to ``None`` rather than aborting the campaign).
    """
    grid = grid if grid is not None else ResilienceGrid()
    attacks = ("none",) + tuple(grid.attacks)
    cells: Dict[Tuple[str, str, str, int], AdversarialScenario] = {}
    for protocol in grid.protocols:
        for defense in grid.defenses:
            for attack in attacks:
                for seed in grid.seeds:
                    cells[(protocol, attack, defense, seed)] = grid.scenario(
                        protocol, attack, defense, seed)

    results = execute_scenarios(
        "adversarial", run_adversarial, list(cells.values()), campaign)

    def runs_for(protocol: str, attack: str, defense: str) -> Tuple[List[RunResult], int]:
        found: List[RunResult] = []
        absent = 0
        for seed in grid.seeds:
            scenario = cells[(protocol, attack, defense, seed)]
            result = results.get(task_key("adversarial", scenario))
            if result is None:
                absent += 1
            else:
                found.append(result)
        return found, absent

    rows: List[ScorecardRow] = []
    for protocol in grid.protocols:
        for defense in grid.defenses:
            base_runs, _ = runs_for(protocol, "none", defense)
            _, base_latency, base_bytes, *_rest = (
                _aggregate(base_runs) if base_runs else (0.0, None, 0.0, 0, 0, 0, 0))
            for attack in attacks:
                runs, absent = runs_for(protocol, attack, defense)
                (completion, latency, mean_bytes, injected, delivered,
                 auth_drops, violations) = _aggregate(runs)
                latency_x = (latency / base_latency
                             if latency is not None and base_latency else None)
                cost_x = (mean_bytes / base_bytes
                          if runs and base_bytes else None)
                rows.append(ScorecardRow(
                    protocol=protocol, attack=attack, defense=defense,
                    runs=len(runs), missing=absent,
                    completion_rate=completion, latency=latency,
                    latency_x=latency_x, cost_x=cost_x,
                    injected=injected, delivered=delivered,
                    auth_drops=auth_drops, violations=violations,
                ))
    return Scorecard(grid=grid, rows=rows)
