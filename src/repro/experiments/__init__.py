"""Experiment harness: scenarios, metrics, and figure/table regeneration.

``python -m repro.experiments <fig3a|fig3b|fig4|fig5|fig6|table2|table3|all>``
regenerates the corresponding paper artifact as a text table; the same
functions are importable for programmatic use (the benchmarks call them with
reduced sizes).
"""

from repro.experiments.metrics import RunResult
from repro.experiments.runner import CompletionTracker, run_network
from repro.experiments.scenarios import (
    MultiHopScenario,
    OneHopScenario,
    run_multihop,
    run_one_hop,
)
from repro.experiments.energy import EnergyModel, EnergyReport, estimate_energy
from repro.experiments.sweeps import sweep_multihop, sweep_one_hop

__all__ = [
    "RunResult",
    "CompletionTracker",
    "run_network",
    "OneHopScenario",
    "MultiHopScenario",
    "run_one_hop",
    "run_multihop",
    "EnergyModel",
    "EnergyReport",
    "estimate_energy",
    "sweep_one_hop",
    "sweep_multihop",
]
