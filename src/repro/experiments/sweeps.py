"""Generic parameter sweeps on the fault-tolerant campaign executor.

The figure functions cover the paper's sweeps; this utility covers
everything else a user might want to explore::

    from repro.experiments.sweeps import sweep_one_hop

    table = sweep_one_hop(
        protocols=("seluge", "lr-seluge"),
        loss_rates=(0.1, 0.3),
        receivers=(10, 20),
        seeds=(1, 2),
        processes=4,
    )
    print(table.report())

Every cell is an independent, deterministic simulation, so the whole sweep
runs as one supervised campaign (:mod:`repro.experiments.executor`): crashed
or hung workers are retried and quarantined instead of losing the sweep, a
``campaign`` config with a checkpoint directory makes the run resumable
after a kill, and rows are assembled **by task key** — never by list
position — so retries and resume cannot misalign the table.

Cells that end up quarantined degrade their row (metrics become ``nan``,
``completed`` shows ``NO``) rather than aborting the sweep.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.executor import (
    CampaignConfig,
    execute_scenarios,
    task_key,
)
from repro.experiments.figures import FigureResult, mean_metrics
from repro.experiments.metrics import RunResult
from repro.experiments.scenarios import (
    MultiHopScenario,
    OneHopScenario,
    run_multihop,
    run_one_hop,
)

__all__ = ["sweep_one_hop", "sweep_multihop"]

_METRIC_HEADERS = ["data_pkts", "snack_pkts", "adv_pkts", "total_bytes", "latency_s"]


def _campaign_for(processes: Optional[int],
                  campaign: Optional[CampaignConfig]) -> CampaignConfig:
    """Resolve the executor config from the legacy ``processes`` knob."""
    if campaign is not None:
        return campaign
    return CampaignConfig(processes=processes)


def _metric_cells(results: Sequence[RunResult]) -> List[object]:
    """The five averaged metrics, or ``nan`` cells if every seed quarantined."""
    if not results:
        return [float("nan")] * len(_METRIC_HEADERS)
    metrics = mean_metrics(results)
    return [round(metrics[h], 1) for h in _METRIC_HEADERS]


def _completed_cell(results: Sequence[RunResult], expected: int) -> str:
    done = bool(results) and len(results) == expected and all(
        r.completed for r in results
    )
    return "yes" if done else "NO"


def sweep_one_hop(
    protocols: Sequence[str] = ("seluge", "lr-seluge"),
    loss_rates: Sequence[float] = (0.1,),
    receivers: Sequence[int] = (20,),
    image_size: int = 20 * 1024,
    k: int = 32,
    n: int = 48,
    seeds: Sequence[int] = (1,),
    processes: Optional[int] = None,
    campaign: Optional[CampaignConfig] = None,
) -> FigureResult:
    """Cartesian sweep over the one-hop scenario space."""
    combos = list(itertools.product(protocols, loss_rates, receivers))
    cells: Dict[Tuple[str, float, int], List[OneHopScenario]] = {}
    for protocol, p, n_recv in combos:
        cells[(protocol, p, n_recv)] = [
            OneHopScenario(protocol=protocol, loss_rate=p, receivers=n_recv,
                           image_size=image_size, k=k, n=n, seed=s)
            for s in seeds
        ]
    scenarios = [s for combo in combos for s in cells[combo]]
    results = execute_scenarios(
        "one_hop", run_one_hop, scenarios, _campaign_for(processes, campaign)
    )
    rows: List[List[object]] = []
    for protocol, p, n_recv in combos:
        combo_results = [
            results[key] for key in
            (task_key("one_hop", s) for s in cells[(protocol, p, n_recv)])
            if key in results
        ]
        rows.append(
            [protocol, p, n_recv]
            + _metric_cells(combo_results)
            + [_completed_cell(combo_results, len(seeds))]
        )
    return FigureResult(
        name=f"One-hop sweep ({image_size // 1024} KiB, k={k}, n={n}, "
             f"{len(seeds)} seed(s))",
        headers=["protocol", "p", "N"] + _METRIC_HEADERS + ["completed"],
        rows=rows,
    )


def sweep_multihop(
    protocols: Sequence[str] = ("seluge", "lr-seluge"),
    topologies: Sequence[str] = ("tight:8x8",),
    image_size: int = 8 * 1024,
    seeds: Sequence[int] = (1,),
    processes: Optional[int] = None,
    campaign: Optional[CampaignConfig] = None,
) -> FigureResult:
    """Cartesian sweep over grid/random topologies."""
    combos = list(itertools.product(protocols, topologies))
    cells: Dict[Tuple[str, str], List[MultiHopScenario]] = {}
    for protocol, topology in combos:
        cells[(protocol, topology)] = [
            MultiHopScenario(protocol=protocol, topology=topology,
                             image_size=image_size, seed=s)
            for s in seeds
        ]
    scenarios = [s for combo in combos for s in cells[combo]]
    results = execute_scenarios(
        "multihop", run_multihop, scenarios, _campaign_for(processes, campaign)
    )
    rows: List[List[object]] = []
    for protocol, topology in combos:
        combo_results = [
            results[key] for key in
            (task_key("multihop", s) for s in cells[(protocol, topology)])
            if key in results
        ]
        rows.append(
            [protocol, topology]
            + _metric_cells(combo_results)
            + [_completed_cell(combo_results, len(seeds))]
        )
    return FigureResult(
        name=f"Multi-hop sweep ({image_size // 1024} KiB, {len(seeds)} seed(s))",
        headers=["protocol", "topology"] + _METRIC_HEADERS + ["completed"],
        rows=rows,
    )
