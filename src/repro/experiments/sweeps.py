"""Generic parameter sweeps with optional multiprocessing.

The figure functions cover the paper's sweeps; this utility covers
everything else a user might want to explore::

    from repro.experiments.sweeps import sweep_one_hop

    table = sweep_one_hop(
        protocols=("seluge", "lr-seluge"),
        loss_rates=(0.1, 0.3),
        receivers=(10, 20),
        seeds=(1, 2),
        processes=4,
    )
    print(table.report())

Every combination runs in its own process (simulations are CPU-bound and
fully independent), with deterministic results regardless of scheduling.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.figures import FigureResult, mean_metrics
from repro.experiments.scenarios import MultiHopScenario, OneHopScenario, run_multihop, run_one_hop

__all__ = ["sweep_one_hop", "sweep_multihop"]

_METRIC_HEADERS = ["data_pkts", "snack_pkts", "adv_pkts", "total_bytes", "latency_s"]


def _run_one_hop_scenario(scenario: OneHopScenario):
    return run_one_hop(scenario)


def _run_multihop_scenario(scenario: MultiHopScenario):
    return run_multihop(scenario)


def _execute(runner, scenarios, processes: Optional[int]):
    if processes and processes > 1:
        import multiprocessing

        with multiprocessing.Pool(processes) as pool:
            return pool.map(runner, scenarios)
    return [runner(s) for s in scenarios]


def sweep_one_hop(
    protocols: Sequence[str] = ("seluge", "lr-seluge"),
    loss_rates: Sequence[float] = (0.1,),
    receivers: Sequence[int] = (20,),
    image_size: int = 20 * 1024,
    k: int = 32,
    n: int = 48,
    seeds: Sequence[int] = (1,),
    processes: Optional[int] = None,
) -> FigureResult:
    """Cartesian sweep over the one-hop scenario space."""
    combos = list(itertools.product(protocols, loss_rates, receivers))
    rows: List[List[object]] = []
    for protocol, p, n_recv in combos:
        scenarios = [
            OneHopScenario(protocol=protocol, loss_rate=p, receivers=n_recv,
                           image_size=image_size, k=k, n=n, seed=s)
            for s in seeds
        ]
        results = _execute(_run_one_hop_scenario, scenarios, processes)
        metrics = mean_metrics(results)
        completed = all(r.completed for r in results)
        rows.append(
            [protocol, p, n_recv]
            + [round(metrics[h], 1) for h in _METRIC_HEADERS]
            + ["yes" if completed else "NO"]
        )
    return FigureResult(
        name=f"One-hop sweep ({image_size // 1024} KiB, k={k}, n={n}, "
             f"{len(seeds)} seed(s))",
        headers=["protocol", "p", "N"] + _METRIC_HEADERS + ["completed"],
        rows=rows,
    )


def sweep_multihop(
    protocols: Sequence[str] = ("seluge", "lr-seluge"),
    topologies: Sequence[str] = ("tight:8x8",),
    image_size: int = 8 * 1024,
    seeds: Sequence[int] = (1,),
    processes: Optional[int] = None,
) -> FigureResult:
    """Cartesian sweep over grid/random topologies."""
    combos = list(itertools.product(protocols, topologies))
    rows: List[List[object]] = []
    for protocol, topology in combos:
        scenarios = [
            MultiHopScenario(protocol=protocol, topology=topology,
                             image_size=image_size, seed=s)
            for s in seeds
        ]
        results = _execute(_run_multihop_scenario, scenarios, processes)
        metrics = mean_metrics(results)
        completed = all(r.completed for r in results)
        rows.append(
            [protocol, topology]
            + [round(metrics[h], 1) for h in _METRIC_HEADERS]
            + ["yes" if completed else "NO"]
        )
    return FigureResult(
        name=f"Multi-hop sweep ({image_size // 1024} KiB, {len(seeds)} seed(s))",
        headers=["protocol", "topology"] + _METRIC_HEADERS + ["completed"],
        rows=rows,
    )
