"""Fault-tolerant campaign executor: supervised, checkpointed sweep cells.

The paper's evaluation is a large campaign of independent simulations.  A
bare ``multiprocessing.Pool.map`` runs them, but one hung or crashed worker
loses the whole campaign and an interrupted multi-hour run restarts from
zero.  This module gives every sweep cell job-level resilience:

* each cell is a :class:`Task` with a **stable content-derived key** (hash
  of its kind + parameters), so results are joined by identity, never by
  list position — retries and resume can never misalign rows;
* a :class:`~repro.experiments.checkpoint.CampaignCheckpoint` journals every
  completed cell atomically, so a killed campaign resumed with
  ``resume=True`` re-runs only the missing cells and — cells being
  deterministic — produces byte-identical aggregate output;
* workers run in their own ``multiprocessing.Process`` with a wall-clock
  timeout and a simulation watchdog
  (:func:`repro.sim.engine.set_default_watchdog`) on by default, failures
  are classified (exception / timeout / worker death / malformed result),
  retried with decelerating jittered backoff
  (:class:`~repro.experiments.backoff.BackoffPolicy`, deterministic per
  task+attempt), and persistent failures are quarantined into
  ``quarantine.jsonl`` instead of aborting the campaign.

Every result — fresh, retried, or replayed from the journal — passes through
the same JSON encode/decode pair, so the resumed and uninterrupted paths are
transformations of identical data by construction.

Wall-clock time (timeouts, backoff deadlines) is read exclusively through
:func:`repro.experiments.reporting.stopwatch`, the repository's sanctioned
clock shim: timing is measurement *about* the campaign, never an input to
any simulation.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import traceback
from dataclasses import asdict, dataclass, field, is_dataclass
from multiprocessing import Process, get_context
from multiprocessing.connection import Connection, wait as connection_wait
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError
from repro.experiments.backoff import BackoffPolicy
from repro.experiments.checkpoint import CampaignCheckpoint
from repro.experiments.metrics import RunResult
from repro.experiments.reporting import stopwatch

__all__ = [
    "Task",
    "TaskAttempt",
    "CampaignConfig",
    "CampaignReport",
    "CampaignOutcome",
    "task_key",
    "run_campaign",
    "execute_scenarios",
    "DEFAULT_WATCHDOG_MAX_EVENTS",
]

# Generous per-task event budget: the biggest paper campaign (15x15 grids,
# 20 KiB images) stays well under ten million events, so a worker crossing
# this line is livelocked, not slow.
DEFAULT_WATCHDOG_MAX_EVENTS = 50_000_000

_SUPERVISOR_TICK_S = 0.05


def _canonical(value: Any) -> Any:
    """Reduce a payload to deterministic JSON-friendly material for hashing."""
    if is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__,
                "fields": _canonical(asdict(value))}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(),
                                                         key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def task_key(kind: str, payload: Any) -> str:
    """Stable content-derived key for one campaign cell.

    The key is a SHA-256 over the cell kind and its canonicalised
    parameters, so the same (scenario, seed, code-relevant config) always
    maps to the same journal entry — across processes, platforms, and
    resumed runs.
    """
    material = json.dumps({"kind": kind, "payload": _canonical(payload)},
                          sort_keys=True)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]


@dataclass(frozen=True)
class Task:
    """One independent campaign cell: a picklable runner and its payload."""

    key: str
    runner: Callable[[Any], Any]
    payload: Any
    label: str = ""

    @classmethod
    def for_scenario(
        cls, kind: str, runner: Callable[[Any], Any], scenario: Any,
        label: str = "",
    ) -> "Task":
        return cls(
            key=task_key(kind, scenario),
            runner=runner,
            payload=scenario,
            label=label or f"{kind}:{getattr(scenario, 'protocol', '?')}"
                           f":seed={getattr(scenario, 'seed', '?')}",
        )


@dataclass
class TaskAttempt:
    """One attempt at one task, as recorded in journals and manifests."""

    attempt: int
    outcome: str                 # "ok" | "exception" | "timeout" | "worker_death" | "malformed"
    error_type: Optional[str] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    backoff_s: Optional[float] = None   # wait applied before the *next* attempt

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"attempt": self.attempt, "outcome": self.outcome}
        for name in ("error_type", "error", "traceback", "backoff_s"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out


@dataclass
class CampaignConfig:
    """How a campaign executes: parallelism, timeouts, retries, checkpoints.

    ``processes=None`` (or 0) runs cells inline in the campaign process —
    no per-task preemption, but the simulation watchdog still bounds
    runaway cells and checkpoint/resume work identically.  ``processes>=1``
    supervises that many concurrent worker processes with wall-clock
    timeouts and kill-based preemption.

    ``pace_s`` inserts a minimum wall-clock delay before each inline cell —
    a throttle for shared machines (and the chaos tests' kill window).

    ``reports`` accumulates one :class:`CampaignReport` per ``run_campaign``
    call that used this config, so a CLI driving several campaigns (e.g.
    ``python -m repro.experiments all``) can merge them into one manifest.

    ``telemetry_dir`` enables live telemetry: a
    :class:`repro.obs.telemetry.TelemetryHub` publishes an atomic
    ``status.json`` snapshot there (watch it with ``python -m repro.obs
    watch``).  ``heartbeat_s > 0`` additionally makes each supervised
    worker stream progress heartbeats over its result pipe at that period,
    so the snapshot shows per-worker events/s, not just task counts.
    ``telemetry_write_every_s`` throttles snapshot writes; the chaos
    harness sets it to 0 so the persist-operation stream is a
    deterministic function of the campaign, not of host speed.

    ``checkpoint_compact_every`` bounds the append-only checkpoint
    journal: after that many appended records the journal is compacted
    (deduplicated and atomically rewritten).  The default is high enough
    that ordinary campaigns never compact mid-run; the chaos workload
    dials it down to push compaction into the explored crash points.
    """

    processes: Optional[int] = None
    task_timeout_s: Optional[float] = None
    max_retries: int = 2
    checkpoint_dir: Optional[Union[str, Path]] = None
    resume: bool = False
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    watchdog_max_events: Optional[int] = DEFAULT_WATCHDOG_MAX_EVENTS
    watchdog_max_sim_time: Optional[float] = None
    pace_s: float = 0.0
    reports: List["CampaignReport"] = field(default_factory=list)
    telemetry_dir: Optional[Union[str, Path]] = None
    heartbeat_s: float = 0.0
    telemetry_write_every_s: float = 0.5
    checkpoint_compact_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ConfigError("task_timeout_s must be positive")
        if self.resume and self.checkpoint_dir is None:
            raise ConfigError("resume=True requires a checkpoint_dir")
        if self.heartbeat_s < 0:
            raise ConfigError("heartbeat_s must be >= 0")
        if self.telemetry_write_every_s < 0:
            raise ConfigError("telemetry_write_every_s must be >= 0")
        if (
            self.checkpoint_compact_every is not None
            and self.checkpoint_compact_every < 1
        ):
            raise ConfigError("checkpoint_compact_every must be >= 1")


@dataclass
class CampaignReport:
    """What happened to every task: the campaign's structured final report."""

    total: int = 0
    completed: int = 0
    resumed: int = 0             # completed cells replayed from the checkpoint
    retried: int = 0             # cells that needed >1 attempt but completed
    quarantined: int = 0
    tasks: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def note(self, task: Task, status: str,
             attempts: Sequence[TaskAttempt]) -> None:
        self.tasks[task.key] = {
            "label": task.label,
            "status": status,
            "attempts": [a.to_dict() for a in attempts],
        }

    def to_dict(self) -> Dict[str, Any]:
        """Manifest-embeddable summary: counts plus per-task attempt history."""
        return {
            "total": self.total,
            "completed": self.completed,
            "resumed": self.resumed,
            "retried": self.retried,
            "quarantined": self.quarantined,
            "tasks": {k: self.tasks[k] for k in sorted(self.tasks)},
        }

    def summary(self) -> str:
        return (
            f"{self.completed}/{self.total} completed"
            f" ({self.resumed} resumed, {self.retried} retried,"
            f" {self.quarantined} quarantined)"
        )


@dataclass
class CampaignOutcome:
    """Results keyed by task key, plus the campaign report and quarantine."""

    results: Dict[str, Any]
    report: CampaignReport
    quarantined: Dict[str, List[TaskAttempt]] = field(default_factory=dict)


def _identity_codec(value: Any) -> Any:
    return value


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _heartbeat_loop(
    conn: Connection,
    send_lock: "threading.Lock",
    stop: "threading.Event",
    interval_s: float,
) -> None:
    """Periodically ship ``("hb", progress)`` tuples until told to stop.

    Runs as a daemon thread beside the task.  Progress is sampled from the
    live simulator via :func:`repro.sim.engine.current_simulator` — two
    attribute loads, safe without coordination — so the task itself needs
    zero instrumentation.  The result pipe is shared with the final send
    under ``send_lock``; a broken pipe (supervisor killed us) just ends the
    loop.
    """
    from repro.experiments.reporting import stopwatch
    from repro.sim.engine import current_simulator

    with stopwatch() as elapsed:
        while not stop.wait(interval_s):
            beat: Dict[str, Any] = {"wall_s": round(elapsed(), 3)}
            sim = current_simulator()
            if sim is not None:
                beat["events"] = sim.processed_events
                beat["sim_time_s"] = round(sim.now, 3)
            with send_lock:
                if stop.is_set():
                    return
                try:
                    conn.send(("hb", beat))
                except (BrokenPipeError, OSError):
                    return


def _worker_main(
    conn: Connection,
    runner: Callable[[Any], Any],
    payload: Any,
    encode: Callable[[Any], Any],
    watchdog_events: Optional[int],
    watchdog_time: Optional[float],
    heartbeat_s: float = 0.0,
) -> None:
    """Run one task in a worker process and ship the encoded result back.

    The watchdog defaults are installed *before* the task constructs its
    simulator, so a livelocked protocol raises SimulationRunawayError (an
    "exception" failure with heap stats in the traceback) instead of hanging
    until the supervisor's timeout kill.

    With ``heartbeat_s > 0`` a daemon thread streams progress heartbeats
    over the same pipe; the final ``("ok"|"error", ...)`` message is still
    the last thing sent (the stop flag is raised under the send lock before
    it goes out).
    """
    from repro.sim.engine import set_default_watchdog

    set_default_watchdog(watchdog_events, watchdog_time)
    send_lock = threading.Lock()
    stop = threading.Event()
    if heartbeat_s > 0:
        threading.Thread(
            target=_heartbeat_loop,
            args=(conn, send_lock, stop, heartbeat_s),
            daemon=True,
        ).start()
    try:
        result = runner(payload)
        with send_lock:
            stop.set()
            conn.send(("ok", encode(result)))
    except Exception as exc:
        with send_lock:
            stop.set()
            conn.send(("error", {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            }))
    finally:
        stop.set()
        conn.close()


# ---------------------------------------------------------------------------
# Supervisor side
# ---------------------------------------------------------------------------

@dataclass
class _TaskState:
    task: Task
    attempts: List[TaskAttempt] = field(default_factory=list)
    not_before: float = 0.0      # campaign-clock instant the next attempt may start

    @property
    def attempt_no(self) -> int:
        return len(self.attempts)


@dataclass
class _WorkerHandle:
    state: _TaskState
    process: Process
    conn: Connection
    deadline: Optional[float]
    final: Optional[Any] = None        # the ("ok"|"error", body) tuple, once seen
    recv_error: Optional[str] = None   # unpicklable/corrupt payload diagnosis


def _is_heartbeat(payload: Any) -> bool:
    return (
        isinstance(payload, tuple) and len(payload) == 2 and payload[0] == "hb"
    )


def _pump_worker_messages(
    handle: _WorkerHandle,
    hub: Optional[Any] = None,
) -> None:
    """Drain queued pipe messages: heartbeats feed the hub, the final result
    is stashed on the handle.

    With heartbeats on the wire, ``conn.poll()`` no longer implies the
    worker finished — only the stashed final message (or process death)
    does, so every supervisor read goes through this pump.
    """
    try:
        while handle.final is None and handle.recv_error is None \
                and handle.conn.poll():
            payload = handle.conn.recv()
            if _is_heartbeat(payload):
                if hub is not None:
                    hub.heartbeat(handle.state.task.key, dict(payload[1]))
                continue
            handle.final = payload
    except (EOFError, OSError):
        pass
    except Exception as exc:   # unpicklable/corrupt payloads land here
        handle.recv_error = f"unreadable result: {exc!r}"


def _classify_worker_end(
    handle: _WorkerHandle,
    hub: Optional[Any] = None,
) -> Tuple[str, Dict[str, Any], Optional[Any]]:
    """Drain a finished worker: ('ok' | failure kind, detail, encoded result)."""
    _pump_worker_messages(handle, hub)
    handle.process.join()
    if handle.recv_error is not None:
        return "malformed", {"error": handle.recv_error}, None
    payload = handle.final
    if payload is None:
        exitcode = handle.process.exitcode
        return "worker_death", {
            "error": f"worker exited without a result (exitcode={exitcode})",
        }, None
    if (
        not isinstance(payload, tuple) or len(payload) != 2
        or payload[0] not in ("ok", "error")
    ):
        return "malformed", {"error": f"malformed result shape: {payload!r}"}, None
    status, body = payload
    if status == "ok":
        return "ok", {}, body
    return "exception", {
        "error": str(body.get("message", "")),
        "error_type": str(body.get("type", "Exception")),
        "traceback": str(body.get("traceback", "")),
    }, None


def _failure_attempt(state: _TaskState, kind: str,
                     detail: Dict[str, Any]) -> TaskAttempt:
    return TaskAttempt(
        attempt=state.attempt_no,
        outcome=kind,
        error_type=detail.get("error_type"),
        error=detail.get("error"),
        traceback=detail.get("traceback"),
    )


def run_campaign(
    tasks: Sequence[Task],
    config: Optional[CampaignConfig] = None,
    encode: Callable[[Any], Any] = _identity_codec,
    decode: Callable[[Any], Any] = _identity_codec,
) -> CampaignOutcome:
    """Execute every task, surviving worker failures; results keyed by task.

    ``encode``/``decode`` bridge task results and the JSON journal; both the
    fresh and resumed paths go through them, so a checkpointed result is
    exactly what an uninterrupted run would have produced.
    """
    config = config if config is not None else CampaignConfig()
    journal: Optional[CampaignCheckpoint] = None
    if config.checkpoint_dir is not None:
        journal_kwargs: Dict[str, Any] = {}
        if config.checkpoint_compact_every is not None:
            journal_kwargs["compact_every"] = config.checkpoint_compact_every
        journal = CampaignCheckpoint(
            config.checkpoint_dir, resume=config.resume, **journal_kwargs
        )
    report = CampaignReport(total=len(tasks))
    outcome = CampaignOutcome(results={}, report=report)
    hub: Optional[Any] = None
    if config.telemetry_dir is not None:
        from repro.obs.telemetry import TelemetryHub

        hub = TelemetryHub(
            config.telemetry_dir, total=len(tasks),
            write_every_s=config.telemetry_write_every_s,
        )

    # Deduplicate by key (identical cells are the same work) and replay the
    # journal: completed cells are decoded, never re-run.
    states: Dict[str, _TaskState] = {}
    for task in tasks:
        states.setdefault(task.key, _TaskState(task=task))
    completed_records = journal.completed() if journal is not None else {}
    pending: List[_TaskState] = []
    for key, state in states.items():
        record = completed_records.get(key)
        if record is not None:
            outcome.results[key] = decode(record["result"])
            report.completed += 1
            report.resumed += 1
            report.note(state.task, "resumed", [])
            if hub is not None:
                hub.task_resumed(key)
        else:
            pending.append(state)

    def finish_ok(state: _TaskState, encoded: Any) -> None:
        state.attempts.append(TaskAttempt(attempt=state.attempt_no, outcome="ok"))
        outcome.results[state.task.key] = decode(encoded)
        report.completed += 1
        if state.attempt_no > 1:
            report.retried += 1
        report.note(state.task, "completed", state.attempts)
        if journal is not None:
            journal.record_completed(
                state.task.key, state.task.label, encoded,
                [a.to_dict() for a in state.attempts],
            )
        if hub is not None:
            hub.task_done(state.task.key)

    def quarantine(state: _TaskState) -> None:
        report.quarantined += 1
        report.note(state.task, "quarantined", state.attempts)
        outcome.quarantined[state.task.key] = list(state.attempts)
        if journal is not None:
            journal.record_quarantined(
                state.task.key, state.task.label,
                [a.to_dict() for a in state.attempts],
            )
        if hub is not None:
            hub.task_quarantined(state.task.key)

    def fail(state: _TaskState, kind: str, detail: Dict[str, Any],
             now: float) -> Optional[_TaskState]:
        """Record a failed attempt; return the state if it should be retried."""
        attempt = _failure_attempt(state, kind, detail)
        state.attempts.append(attempt)
        if len(state.attempts) <= config.max_retries:
            attempt.backoff_s = round(
                config.backoff.delay(state.task.key, len(state.attempts) - 1), 6
            )
            state.not_before = now + attempt.backoff_s
            if hub is not None:
                hub.task_retrying(state.task.key)
            return state
        quarantine(state)
        return None

    try:
        if pending:
            if not config.processes:
                _run_inline(pending, config, encode, finish_ok, fail, hub)
            else:
                _run_supervised(pending, config, encode, finish_ok, fail, hub)
    finally:
        if hub is not None:
            hub.close()

    config.reports.append(report)
    return outcome


def _run_inline(
    pending: List[_TaskState],
    config: CampaignConfig,
    encode: Callable[[Any], Any],
    finish_ok: Callable[[_TaskState, Any], None],
    fail: Callable[[_TaskState, str, Dict[str, Any], float], Optional[_TaskState]],
    hub: Optional[Any] = None,
) -> None:
    """Single-process execution: no preemption, but full retry/checkpoint.

    The per-task wall-clock timeout cannot interrupt an inline cell (there
    is no process to kill); the simulation watchdog is the runaway bound
    here, and it is *not* installed process-wide so the caller's environment
    stays untouched.
    """
    from repro.sim import engine

    queue = list(pending)
    with stopwatch() as elapsed:
        while queue:
            state = queue.pop(0)
            wait = max(state.not_before - elapsed(), 0.0)
            if config.pace_s > wait:
                wait = config.pace_s
            if wait > 0.0:
                time.sleep(wait)
            if hub is not None:
                hub.task_started(state.task.key, state.task.label)
            watchdog_before = engine.get_default_watchdog()
            engine.set_default_watchdog(
                config.watchdog_max_events, config.watchdog_max_sim_time
            )
            try:
                encoded = encode(state.task.runner(state.task.payload))
            except Exception as exc:
                retry = fail(state, "exception", {
                    "error": str(exc),
                    "error_type": type(exc).__name__,
                    "traceback": traceback.format_exc(),
                }, elapsed())
                if retry is not None:
                    queue.append(retry)
                continue
            finally:
                engine.set_default_watchdog(*watchdog_before)
            finish_ok(state, encoded)


def _run_supervised(
    pending: List[_TaskState],
    config: CampaignConfig,
    encode: Callable[[Any], Any],
    finish_ok: Callable[[_TaskState, Any], None],
    fail: Callable[[_TaskState, str, Dict[str, Any], float], Optional[_TaskState]],
    hub: Optional[Any] = None,
) -> None:
    """Multi-process supervision: timeouts, kill-classification, backoff."""
    ctx = get_context()
    slots = max(int(config.processes or 1), 1)
    queue = list(pending)
    running: List[_WorkerHandle] = []

    with stopwatch() as elapsed:
        while queue or running:
            now = elapsed()
            # Launch every runnable task into a free slot.
            launchable = [s for s in queue if s.not_before <= now]
            while launchable and len(running) < slots:
                state = launchable.pop(0)
                queue.remove(state)
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, state.task.runner, state.task.payload,
                          encode, config.watchdog_max_events,
                          config.watchdog_max_sim_time, config.heartbeat_s),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                if hub is not None:
                    hub.task_started(state.task.key, state.task.label)
                deadline = (
                    now + config.task_timeout_s
                    if config.task_timeout_s is not None else None
                )
                running.append(_WorkerHandle(
                    state=state, process=process, conn=parent_conn,
                    deadline=deadline,
                ))

            if not running:
                # Everything left is backing off; sleep to the earliest retry.
                wake = min(s.not_before for s in queue)
                time.sleep(max(min(wake - elapsed(), 1.0), 0.001))
                continue

            # Wait for any worker to finish (or the next deadline/tick).
            timeout = _SUPERVISOR_TICK_S
            for handle in running:
                if handle.deadline is not None:
                    timeout = min(timeout, max(handle.deadline - now, 0.0))
            connection_wait([h.conn for h in running], timeout=timeout)

            now = elapsed()
            still_running: List[_WorkerHandle] = []
            for handle in running:
                state = handle.state
                # Heartbeats arrive on the same pipe as the result, so a
                # readable pipe alone does not mean "finished" — pump first,
                # then look for a stashed final message or a dead process.
                _pump_worker_messages(handle, hub)
                finished = (
                    handle.final is not None
                    or handle.recv_error is not None
                    or not handle.process.is_alive()
                )
                if finished:
                    kind, detail, encoded = _classify_worker_end(handle, hub)
                    handle.conn.close()
                    if kind == "ok":
                        finish_ok(state, encoded)
                    else:
                        retry = fail(state, kind, detail, now)
                        if retry is not None:
                            queue.append(retry)
                elif handle.deadline is not None and now >= handle.deadline:
                    handle.process.kill()
                    handle.process.join()
                    handle.conn.close()
                    retry = fail(state, "timeout", {
                        "error": f"task exceeded {config.task_timeout_s}s "
                                 "wall-clock timeout and was killed",
                    }, now)
                    if retry is not None:
                        queue.append(retry)
                else:
                    still_running.append(handle)
            running = still_running


# ---------------------------------------------------------------------------
# Scenario campaigns (the bridge sweeps/figures/tables use)
# ---------------------------------------------------------------------------

def _encode_run_result(result: Any) -> Any:
    return result.to_jsonable()


def _decode_run_result(data: Any) -> RunResult:
    return RunResult.from_jsonable(data)


def execute_scenarios(
    kind: str,
    runner: Callable[[Any], RunResult],
    scenarios: Sequence[Any],
    campaign: Optional[CampaignConfig] = None,
) -> Dict[str, RunResult]:
    """Run scenario cells through the executor; results keyed by task key.

    This is the single execution path for every sweep, figure, and table
    campaign: callers build their scenario list, execute it here, and join
    results back by ``task_key(kind, scenario)``.  Quarantined cells are
    absent from the mapping — the caller degrades its aggregate rather than
    aborting.
    """
    tasks = [Task.for_scenario(kind, runner, scenario) for scenario in scenarios]
    outcome = run_campaign(
        tasks,
        campaign if campaign is not None else CampaignConfig(),
        encode=_encode_run_result,
        decode=_decode_run_result,
    )
    return outcome.results
