"""Network energy accounting (extension).

The paper motivates DoS resilience with the adversary's ability to "deplete
the limited energy ... of sensor nodes"; this module turns a simulation's
counters into joules so that claim can be quantified.  Constants default to
mica2-class hardware (CC1000 radio at 19.2 kbps, ATmega128L MCU):

* transmit ≈ 81 mW, receive ≈ 30 mW → per-byte costs at 19.2 kbps;
* SHA-256 over one packet ≈ 15 µJ on an 8-bit MCU (dominated by RAM moves);
* one ECDSA P-192 verification ≈ 45 mJ (~1.1 s at 40 mW, the Tmote figure
  the paper cites scaled to mica2-class power);
* one page erasure decode (Gaussian elimination over GF(256)) ≈ 2 mJ.

Only *relative* comparisons matter for the reproduction; the constants are
documented so they can be re-calibrated for other platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.experiments.metrics import RunResult

__all__ = ["EnergyModel", "EnergyReport", "estimate_energy"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy costs in microjoules."""

    tx_per_byte_uj: float = 4.6       # 81 mW / (19200/8 B/s) * 1.36 overhead
    rx_per_byte_uj: float = 1.7       # 30 mW at the same bit rate
    hash_uj: float = 15.0
    merkle_hash_uj: float = 15.0
    ecdsa_verify_uj: float = 45_000.0
    puzzle_check_uj: float = 15.0
    decode_uj: float = 2_000.0
    encode_uj: float = 1_500.0
    idle_listen_uj_per_s: float = 150.0   # low-power listening duty cycle


@dataclass(frozen=True)
class EnergyReport:
    """Network-wide energy, by category, in millijoules."""

    tx_mj: float
    rx_mj: float
    crypto_mj: float
    decode_mj: float
    idle_mj: float

    @property
    def total_mj(self) -> float:
        return self.tx_mj + self.rx_mj + self.crypto_mj + self.decode_mj + self.idle_mj

    def breakdown(self) -> Dict[str, float]:
        return {
            "tx_mj": round(self.tx_mj, 2),
            "rx_mj": round(self.rx_mj, 2),
            "crypto_mj": round(self.crypto_mj, 2),
            "decode_mj": round(self.decode_mj, 2),
            "idle_mj": round(self.idle_mj, 2),
            "total_mj": round(self.total_mj, 2),
        }


def estimate_energy(
    result: RunResult,
    n_nodes: int,
    pipelines: Optional[Iterable] = None,
    model: Optional[EnergyModel] = None,
) -> EnergyReport:
    """Estimate network-wide energy for one finished run.

    ``pipelines`` supplies the per-node verification statistics (any
    iterable of objects with a ``stats`` Counter, e.g. the nodes'
    ``pipeline`` attributes); without it crypto/decode energy is 0.
    """
    model = model or EnergyModel()
    counters = result.counters
    tx_bytes = counters.get("tx_total_bytes", 0)
    rx_bytes = counters.get("rx_delivered_bytes", 0)
    tx_mj = tx_bytes * model.tx_per_byte_uj / 1000.0
    rx_mj = rx_bytes * model.rx_per_byte_uj / 1000.0
    crypto_uj = 0.0
    decode_uj = 0.0
    if pipelines is not None:
        for pipeline in pipelines:
            stats = pipeline.stats
            crypto_uj += stats.get("hash_checks", 0) * model.hash_uj
            crypto_uj += stats.get("merkle_checks", 0) * model.merkle_hash_uj * 3
            crypto_uj += stats.get("signature_verifications", 0) * model.ecdsa_verify_uj
            crypto_uj += stats.get("puzzle_checks", 0) * model.puzzle_check_uj
            decode_uj += stats.get("decode_ops", 0) * model.decode_uj
            decode_uj += stats.get("encode_ops", 0) * model.encode_uj
    idle_mj = n_nodes * result.latency * model.idle_listen_uj_per_s / 1000.0
    return EnergyReport(
        tx_mj=tx_mj,
        rx_mj=rx_mj,
        crypto_mj=crypto_uj / 1000.0,
        decode_mj=decode_uj / 1000.0,
        idle_mj=idle_mj,
    )
