"""Drive one dissemination to completion and snapshot the metrics.

Counters are snapshotted at the instant the *last* node completes, so
steady-state Trickle chatter after the interesting part does not pollute the
comparison (the paper measures until dissemination finishes).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.experiments.metrics import RunResult
from repro.protocols.common import DisseminationNode
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder

__all__ = ["CompletionTracker", "run_network"]


class CompletionTracker:
    """Collects per-node completion events; freezes counters at the end."""

    def __init__(self, trace: TraceRecorder):
        self.trace = trace
        self.expected: Optional[Set[int]] = None
        self.completions: Dict[int, float] = {}
        self.done_time: Optional[float] = None
        self.snapshot: Optional[Dict[str, int]] = None

    def expect(self, node_ids: Iterable[int]) -> None:
        self.expected = set(node_ids)
        self._check_done(None)

    def __call__(self, node: DisseminationNode) -> None:
        self.completions[node.node_id] = node.sim.now
        self._check_done(node.sim)

    def _check_done(self, sim: Optional[Simulator]) -> None:
        if self.expected is None or self.done_time is not None:
            return
        if self.expected.issubset(self.completions):
            self.done_time = (
                max((self.completions[i] for i in self.expected), default=0.0)
            )
            self.snapshot = self.trace.snapshot()

    @property
    def all_done(self) -> bool:
        return self.done_time is not None


def run_network(
    sim: Simulator,
    trace: TraceRecorder,
    tracker: CompletionTracker,
    nodes: List[DisseminationNode],
    protocol: str,
    max_time: float = 7200.0,
    expected_image: Optional[bytes] = None,
    chunk: float = 5.0,
    seed: int = 0,
    manifest_path: Optional[str] = None,
    manifest_config: Optional[Dict[str, object]] = None,
) -> RunResult:
    """Run until every tracked node completes or ``max_time`` elapses.

    With ``manifest_path`` set, a :class:`repro.obs.manifest.RunManifest`
    (seed, config, git rev, counters, wall/sim timings) is written there
    after the run.
    """
    from repro.experiments.reporting import stopwatch

    tracker.expect([n.node_id for n in nodes])
    for node in nodes:
        node.start()
    with stopwatch() as elapsed:
        while not tracker.all_done and sim.now < max_time:
            sim.run(until=min(sim.now + chunk, max_time))
    completed = tracker.all_done
    counters = tracker.snapshot if completed else trace.snapshot()
    latency = tracker.done_time if completed else max_time
    images_ok: Optional[bool] = None
    if expected_image is not None:
        images_ok = completed and all(
            node.image_bytes() == expected_image for node in nodes
        )
    result = RunResult(
        protocol=protocol,
        completed=completed,
        latency=latency,
        counters=counters or {},
        per_node_completion=dict(tracker.completions),
        images_ok=images_ok,
        seed=seed,
        n_nodes=len(nodes),
        tracked=tuple(sorted(tracker.expected or ())),
    )
    if manifest_path is not None:
        from repro.obs.manifest import RunManifest

        config: Dict[str, object] = {"protocol": protocol, "max_time": max_time}
        if manifest_config:
            config.update(manifest_config)
        RunManifest.from_run(
            "repro.experiments.runner", result, config=config,
            wall_s=elapsed(), sim=sim,
            unregistered=trace.registry.unregistered_names(),
        ).write(manifest_path)
    return result
