"""Crash-safe campaign checkpointing.

A campaign's progress lives in two JSONL journals inside the checkpoint
directory:

* ``checkpoint.jsonl`` — one record per *completed* task: its content-derived
  key, label, attempt history, and the JSON-encoded result.  A killed
  campaign restarted with ``resume=True`` replays this journal and re-runs
  only the missing cells; because every cell is a deterministic function of
  its parameters, the resumed campaign's aggregate output is byte-identical
  to an uninterrupted run.
* ``quarantine.jsonl`` — one record per task that exhausted its retry budget,
  with the full failure taxonomy (kind, error, traceback, backoff waits) so
  a campaign postmortem needs no log spelunking.

Both journals are rewritten through :func:`repro.persist.atomic_write_jsonl`
(write-temp-then-rename + fsync) on every update, so no kill — not even
SIGKILL mid-write — can tear a record.  The journal is single-writer by
design: one campaign process owns a checkpoint directory at a time.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.persist import atomic_write_jsonl, read_jsonl

__all__ = ["CHECKPOINT_SCHEMA_VERSION", "CampaignCheckpoint"]

CHECKPOINT_SCHEMA_VERSION = 1


class CampaignCheckpoint:
    """Journal of completed and quarantined tasks for one campaign.

    ``resume=False`` starts a fresh journal (truncating any stale one in the
    directory); ``resume=True`` loads the existing records so the executor
    can skip already-completed tasks.
    """

    def __init__(self, directory: Union[str, Path], resume: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / "checkpoint.jsonl"
        self.quarantine_path = self.directory / "quarantine.jsonl"
        self._records: List[Dict[str, Any]] = []
        self._quarantine: List[Dict[str, Any]] = []
        if resume:
            self._records = [
                r for r in read_jsonl(self.path)
                if isinstance(r, dict)
                and r.get("schema_version") == CHECKPOINT_SCHEMA_VERSION
            ]
            self._quarantine = [
                r for r in read_jsonl(self.quarantine_path)
                if isinstance(r, dict)
            ]
        else:
            atomic_write_jsonl(self.path, self._records)
            atomic_write_jsonl(self.quarantine_path, self._quarantine)

    # -- completed tasks --------------------------------------------------------

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Completed records keyed by task key (last record wins)."""
        return {str(r["key"]): r for r in self._records if "key" in r}

    def record_completed(
        self,
        key: str,
        label: str,
        result: Any,
        attempts: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        """Journal one completed task; durable before this returns."""
        self._records.append({
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "key": key,
            "label": label,
            "attempts": list(attempts or []),
            "result": result,
        })
        atomic_write_jsonl(self.path, self._records)

    # -- quarantined tasks ------------------------------------------------------

    def quarantined(self) -> List[Dict[str, Any]]:
        return list(self._quarantine)

    def record_quarantined(
        self, key: str, label: str, attempts: List[Dict[str, Any]]
    ) -> None:
        """Journal one task that exhausted its retries; durable on return."""
        self._quarantine.append({
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "key": key,
            "label": label,
            "attempts": list(attempts),
        })
        atomic_write_jsonl(self.quarantine_path, self._quarantine)
