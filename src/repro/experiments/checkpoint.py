"""Crash-safe campaign checkpointing.

A campaign's progress lives in two JSONL journals inside the checkpoint
directory:

* ``checkpoint.jsonl`` — one record per *completed* task: its content-derived
  key, label, attempt history, and the JSON-encoded result.  A killed
  campaign restarted with ``resume=True`` replays this journal and re-runs
  only the missing cells; because every cell is a deterministic function of
  its parameters, the resumed campaign's aggregate output is byte-identical
  to an uninterrupted run.
* ``quarantine.jsonl`` — one record per task that exhausted its retry budget,
  with the full failure taxonomy (kind, error, traceback, backoff waits) so
  a campaign postmortem needs no log spelunking.

Both journals are **append-only** during a run: each record lands through
:func:`repro.persist.atomic_append_jsonl` — one fsynced ``O_APPEND`` write,
O(record) instead of the full-file rewrite the first implementation paid per
cell.  A kill mid-append can at worst leave one torn *trailing* line, which
the loader tolerates (and which the next append truncates away before
writing).  Periodic **compaction** — last-wins dedup by key, rewritten
through :func:`repro.persist.atomic_write_jsonl`'s temp-then-rename path —
bounds journal growth under heavy resume churn; a crash at any point during
compaction leaves either the old appended journal or the new compacted one
on disk, never a mix.  The storage chaos engine (:mod:`repro.chaos`)
explores a simulated kill at every one of these persist operations,
including mid-compaction, and asserts resume stays byte-identical.

The journal is single-writer by design: one campaign process owns a
checkpoint directory at a time.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.persist import (
    JsonlReport,
    atomic_append_jsonl,
    atomic_write_jsonl,
    read_jsonl_report,
)

__all__ = ["CHECKPOINT_SCHEMA_VERSION", "DEFAULT_COMPACT_EVERY",
           "CampaignCheckpoint"]

CHECKPOINT_SCHEMA_VERSION = 1

# Appended records between automatic compactions.  Large enough that a
# normal campaign never compacts mid-run (cells are journalled once each);
# the chaos workload dials it down to force compaction into the explored
# operation stream.
DEFAULT_COMPACT_EVERY = 1024


def _valid_records(report: JsonlReport) -> List[Dict[str, Any]]:
    return [
        r for r in report.records
        if isinstance(r, dict)
        and r.get("schema_version") == CHECKPOINT_SCHEMA_VERSION
    ]


class CampaignCheckpoint:
    """Journal of completed and quarantined tasks for one campaign.

    ``resume=False`` starts a fresh journal (truncating any stale one in the
    directory); ``resume=True`` loads the existing records so the executor
    can skip already-completed tasks.  On resume, a journal left dirty by a
    crash — torn tail, or duplicate keys from a cell that completed twice
    around a kill — is healed by an immediate compaction, so the post-resume
    on-disk state is always clean.  ``load_report`` keeps the tolerant-read
    evidence (torn/skipped line counts per journal) for postmortems: a torn
    *tail* is the expected post-crash state, torn *interior* lines are real
    corruption and are surfaced, never silently dropped.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        resume: bool = False,
        compact_every: int = DEFAULT_COMPACT_EVERY,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / "checkpoint.jsonl"
        self.quarantine_path = self.directory / "quarantine.jsonl"
        self.compact_every = max(int(compact_every), 1)
        self._appended_since_compact = 0
        self._records: List[Dict[str, Any]] = []
        self._quarantine: List[Dict[str, Any]] = []
        self.load_report: Dict[str, JsonlReport] = {}
        if resume:
            ckpt_report = read_jsonl_report(self.path)
            quarantine_report = read_jsonl_report(self.quarantine_path)
            self.load_report = {
                "checkpoint": ckpt_report,
                "quarantine": quarantine_report,
            }
            self._records = _valid_records(ckpt_report)
            self._quarantine = [
                r for r in quarantine_report.records if isinstance(r, dict)
            ]
            if not ckpt_report.clean or self._has_duplicate_keys():
                self.compact()
            if not quarantine_report.clean:
                atomic_write_jsonl(self.quarantine_path, self._quarantine)
        else:
            atomic_write_jsonl(self.path, self._records)
            atomic_write_jsonl(self.quarantine_path, self._quarantine)

    # -- completed tasks --------------------------------------------------------

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Completed records keyed by task key (last record wins)."""
        return {str(r["key"]): r for r in self._records if "key" in r}

    def record_completed(
        self,
        key: str,
        label: str,
        result: Any,
        attempts: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        """Journal one completed task; durable before this returns."""
        record = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "key": key,
            "label": label,
            "attempts": list(attempts or []),
            "result": result,
        }
        self._records.append(record)
        atomic_append_jsonl(self.path, record)
        self._appended_since_compact += 1
        if self._appended_since_compact >= self.compact_every:
            self.compact()

    def compact(self) -> None:
        """Rewrite the completed-task journal deduplicated, crash-safely.

        Last-wins dedup by key, preserving first-seen order; the rewrite
        goes through the atomic temp-then-rename path, so a kill at any
        point leaves either the old appended journal or the new compacted
        one — both fully parseable, both containing every completed task.
        """
        deduped = list(self.completed().values())
        self._records = deduped
        atomic_write_jsonl(self.path, deduped)
        self._appended_since_compact = 0

    def _has_duplicate_keys(self) -> bool:
        keys = [str(r.get("key")) for r in self._records]
        return len(keys) != len(set(keys))

    # -- quarantined tasks ------------------------------------------------------

    def quarantined(self) -> List[Dict[str, Any]]:
        return list(self._quarantine)

    def record_quarantined(
        self, key: str, label: str, attempts: List[Dict[str, Any]]
    ) -> None:
        """Journal one task that exhausted its retries; durable on return."""
        record = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "key": key,
            "label": label,
            "attempts": list(attempts),
        }
        self._quarantine.append(record)
        atomic_append_jsonl(self.quarantine_path, record)
