"""Plain-text report tables for regenerated figures and tables."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

__all__ = ["format_table", "format_comparison"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        return f"{value:.2f}"
    return str(value)


def format_comparison(
    label: str,
    baseline: Dict[str, float],
    candidate: Dict[str, float],
    baseline_name: str = "seluge",
    candidate_name: str = "lr-seluge",
) -> str:
    """One-line relative summary: negative saving means the candidate costs more."""
    parts = [label]
    for key in baseline:
        b, c = baseline[key], candidate.get(key, 0)
        if b:
            parts.append(f"{key}: {100.0 * (1.0 - c / b):+.0f}%")
    return "  ".join(parts)
