"""Plain-text report tables for regenerated figures and tables.

This module is also the repository's *only* sanctioned wall-clock call site
(replint REP002): CLI progress timing goes through :func:`stopwatch`, so
simulation logic everywhere else stays a pure function of (config, seed).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Sequence

__all__ = ["format_table", "format_comparison", "stopwatch"]


@contextmanager
def stopwatch() -> Iterator[Callable[[], float]]:
    """Measure wall-clock duration for CLI reporting.

    Yields a zero-argument callable returning the seconds elapsed since the
    block was entered (monotonic, via :func:`time.perf_counter`)::

        with stopwatch() as elapsed:
            run_everything()
        print(f"done in {elapsed():.1f}s")

    Any other wall-clock read in this repository is a REP002 violation —
    simulated time lives exclusively on the event engine.
    """
    start = time.perf_counter()
    yield lambda: time.perf_counter() - start


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        return f"{value:.2f}"
    return str(value)


def format_comparison(
    label: str,
    baseline: Dict[str, float],
    candidate: Dict[str, float],
    baseline_name: str = "seluge",
    candidate_name: str = "lr-seluge",
) -> str:
    """One-line relative summary: negative saving means the candidate costs more."""
    parts = [label]
    for key in baseline:
        b, c = baseline[key], candidate.get(key, 0)
        if b:
            parts.append(f"{key}: {100.0 * (1.0 - c / b):+.0f}%")
    return "  ".join(parts)
