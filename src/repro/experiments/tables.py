"""Regeneration of the paper's multi-hop tables (Section VI-C).

Table II: 15x15 tight mica2 grid (high density).
Table III: 15x15 medium mica2 grid (low density).

Multi-hop cells are the longest simulations in the repo, so the tables run
through the fault-tolerant campaign executor: pass a
:class:`~repro.experiments.executor.CampaignConfig` with a checkpoint
directory to make a table resumable after a crash, or with ``processes`` to
run the protocol/seed cells in supervised workers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.executor import (
    CampaignConfig,
    execute_scenarios,
    task_key,
)
from repro.experiments.figures import FigureResult, mean_metrics
from repro.experiments.metrics import RunResult
from repro.experiments.scenarios import MultiHopScenario, run_multihop

__all__ = ["multihop_table", "table2", "table3"]

_METRIC_HEADERS = ["data_pkts", "snack_pkts", "adv_pkts", "total_bytes", "latency_s"]


def multihop_table(
    name: str,
    topology: str,
    image_size: int = 20 * 1024,
    seeds: Sequence[int] = (1, 2),
    protocols: Sequence[str] = ("seluge", "lr-seluge"),
    max_time: float = 14400.0,
    campaign: Optional[CampaignConfig] = None,
) -> FigureResult:
    """Run both protocols over a grid and tabulate the five paper metrics."""
    groups = {
        protocol: [
            MultiHopScenario(protocol=protocol, topology=topology,
                             image_size=image_size, seed=s, max_time=max_time)
            for s in seeds
        ]
        for protocol in protocols
    }
    results = execute_scenarios(
        "multihop", run_multihop,
        [s for group in groups.values() for s in group], campaign,
    )
    rows: List[List[object]] = []
    per_protocol = {}
    for protocol in protocols:
        keys = (task_key("multihop", s) for s in groups[protocol])
        runs: List[RunResult] = [results[k] for k in keys if k in results]
        if not runs:
            rows.append([protocol] + [float("nan")] * len(_METRIC_HEADERS) + ["NO"])
            continue
        metrics = mean_metrics(runs)
        per_protocol[protocol] = metrics
        completed = len(runs) == len(seeds) and all(r.completed for r in runs)
        rows.append(
            [protocol]
            + [round(metrics[h], 1) for h in _METRIC_HEADERS]
            + ["yes" if completed else "NO"]
        )
    notes = ""
    if "seluge" in per_protocol and "lr-seluge" in per_protocol:
        s, l = per_protocol["seluge"], per_protocol["lr-seluge"]
        savings = {
            h: 100.0 * (1.0 - l[h] / s[h]) if s[h] else 0.0 for h in _METRIC_HEADERS
        }
        notes = "LR-Seluge vs Seluge savings: " + "  ".join(
            f"{h} {v:+.0f}%" for h, v in savings.items()
        )
    return FigureResult(
        name=name,
        headers=["protocol"] + _METRIC_HEADERS + ["completed"],
        rows=rows,
        notes=notes,
    )


def table2(image_size: int = 20 * 1024, seeds: Sequence[int] = (1, 2),
           rows: int = 15, cols: int = 15,
           campaign: Optional[CampaignConfig] = None) -> FigureResult:
    """Table II: high-density (tight) mica2 grid."""
    return multihop_table(
        f"Table II: {rows}x{cols} tight mica2 grid (high density)",
        topology=f"tight:{rows}x{cols}",
        image_size=image_size,
        seeds=seeds,
        campaign=campaign,
    )


def table3(image_size: int = 20 * 1024, seeds: Sequence[int] = (1, 2),
           rows: int = 15, cols: int = 15,
           campaign: Optional[CampaignConfig] = None) -> FigureResult:
    """Table III: low-density (medium) mica2 grid."""
    return multihop_table(
        f"Table III: {rows}x{cols} medium mica2 grid (low density)",
        topology=f"medium:{rows}x{cols}",
        image_size=image_size,
        seeds=seeds,
        campaign=campaign,
    )
