"""Adversarial scenarios: dissemination under composable attacks.

An :class:`AdversarialScenario` is the attack-facing sibling of the
canonical scenarios in :mod:`repro.experiments.scenarios`: one protocol
network on a star or grid topology, plus an :class:`~repro.attacks.plan.
AttackPlan` deployed through the :class:`~repro.attacks.engine.AttackEngine`,
an optional flag-gated :class:`~repro.protocols.defense.DefenseConfig`, and
an optional :class:`~repro.faults.plan.FaultPlan` (so attackers themselves
can crash and reboot mid-run — they are radio participants like any node).

Two deviations from the canonical setups, both deliberate:

* collisions are **on** even for star topologies — a reactive jammer's only
  damage channel is airtime contention, so the CSMA/collision model must
  run for attack results to mean anything;
* the flight recorder and structured event log are always attached —
  per-attacker damage attribution reads injected/delivered/auth-dropped
  frame counts from the per-link matrix, and the invariant checker
  (``quarantine_respected``, ``replay_never_rebuffered``) replays the log.

The runner folds attribution and the invariant verdict into the returned
:class:`~repro.experiments.metrics.RunResult` ``counters`` as plain ints
(``adv_attacker_<id>_injected`` …, ``invariant_violations``), so results
survive the campaign executor's JSON round-trip unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.attacks import AttackEngine, AttackContext, AttackModel, AttackPlan, AttackSpec
from repro.core.config import ProtocolTiming
from repro.core.image import CodeImage
from repro.errors import ConfigError
from repro.experiments.metrics import RunResult
from repro.experiments.runner import CompletionTracker, run_network
from repro.experiments.scenarios import _BUILDERS, _build_topology, make_params
from repro.faults.flash import NodeFlash
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.net.channel import BernoulliLoss, LossModel, PerLinkLoss
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import Topology, star_topology
from repro.obs.events import EventLog
from repro.obs.flight import FlightRecorder
from repro.obs.invariants import check_events
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.protocols.defense import DefenseConfig

__all__ = [
    "AdversarialScenario",
    "AdversarialRig",
    "build_adversarial",
    "run_adversarial",
]

#: Protocols whose builders accept the SNACK flood guard / control-plane
#: authentication knobs (Seluge-family defenses; Deluge has no SNACK MACs).
_SECURED_PROTOCOLS = ("seluge", "lr-seluge")


@dataclass(frozen=True)
class AdversarialScenario:
    """One dissemination run with attackers, defenses, and faults attached.

    ``topology`` accepts ``star:<receivers>`` plus every multi-hop spec the
    canonical scenarios know (``tight``/``medium``/``grid:RxC:spacing``/
    ``random:n:side``).  ``loss_rate`` only applies to star topologies
    (app-layer Bernoulli loss); grids use their per-link loss model.

    The frozen dataclass form is load-bearing: the campaign executor hashes
    scenarios into stable task keys, so every field — including each
    :class:`AttackSpec` and :class:`FaultEvent` — must canonicalise.
    """

    protocol: str = "lr-seluge"
    topology: str = "star:8"
    loss_rate: float = 0.05
    image_size: int = 4096
    k: int = 8
    n: int = 12
    kprime: int = 0
    seed: int = 1
    max_time: float = 3600.0
    attacks: Tuple[AttackSpec, ...] = ()
    defense: Optional[DefenseConfig] = None
    snack_flood_threshold: Optional[int] = None
    control_auth: Optional[str] = None
    faults: Tuple[FaultEvent, ...] = ()
    check_invariants: bool = True
    timing: Optional[ProtocolTiming] = None
    label: str = ""

    def with_protocol(self, protocol: str) -> "AdversarialScenario":
        return replace(self, protocol=protocol)

    def with_defense(self, defense: Optional[DefenseConfig]) -> "AdversarialScenario":
        return replace(self, defense=defense)

    def undefended(self) -> "AdversarialScenario":
        """The same cell with every hardening layer switched off."""
        return replace(self, defense=None, snack_flood_threshold=None,
                       control_auth=None)

    def attack_free(self) -> "AdversarialScenario":
        """The matching baseline: identical network, no adversaries."""
        return replace(self, attacks=())


def _topology_for(scenario: AdversarialScenario, rngs: RngRegistry) -> Topology:
    spec = scenario.topology
    if spec.startswith("star"):
        _, _, dims = spec.partition(":")
        receivers = int(dims) if dims else 8
        if receivers < 1:
            raise ConfigError(f"star topology needs >= 1 receiver, got {receivers}")
        return star_topology(receivers)
    # _build_topology only reads ``.topology``, so the scenario duck-types.
    return _build_topology(scenario, rngs)  # type: ignore[arg-type]


@dataclass
class AdversarialRig:
    """A fully wired, not-yet-started adversarial simulation.

    :func:`build_adversarial` returns one so tests and the analyzer can hold
    on to the attacker instances, the flight recorder, and the event log;
    :meth:`run` starts everything and returns the enriched result.
    """

    scenario: AdversarialScenario
    sim: Simulator
    trace: TraceRecorder
    log: Optional[EventLog]
    flight: Optional[FlightRecorder]
    tracker: CompletionTracker
    radio: Radio
    base: object
    nodes: List[object]
    engine: AttackEngine
    attackers: List[AttackModel]
    image: CodeImage
    params: object = None
    pre: object = None
    _ran: bool = field(default=False, repr=False)

    def run(self) -> RunResult:
        """Start attackers and the base station, run to completion or the
        time horizon, and fold attribution + invariants into the result."""
        if self._ran:
            raise ConfigError("AdversarialRig.run() called twice")
        self._ran = True
        scenario = self.scenario
        self.engine.start_all()
        self.base.start()  # type: ignore[attr-defined]
        result = run_network(
            self.sim, self.trace, self.tracker, self.nodes, scenario.protocol,
            max_time=scenario.max_time, expected_image=self.image.data,
            seed=scenario.seed,
        )
        if self.flight is not None:
            self.flight.finalize(self.sim.now)
            result.counters.update(
                _attribution(self.flight, self.engine.attacker_ids))
        if scenario.check_invariants and self.log is not None:
            report = check_events(self.log)
            result.counters["invariant_violations"] = len(report.violations)
        return result


def _attribution(flight: FlightRecorder, attacker_ids: List[int]) -> Dict[str, int]:
    """Per-attacker damage attribution from the flight-recorder link stats.

    ``injected`` counts frames the attacker put on the air, ``delivered``
    those that actually reached a victim's radio, and ``auth_drops`` the
    injected data packets the victims' authentication pipeline rejected —
    the difference between an attack's *volume* and its *bite*.
    """
    counters: Dict[str, int] = {}
    tx = flight.tx_frame_counts()
    matrix = flight.link_matrix()
    totals = {"injected": 0, "delivered": 0, "auth_drops": 0}
    for aid in sorted(attacker_ids):
        injected = tx.get(aid, 0)
        delivered = sum(row["rx"] for (src, _dst), row in matrix.items()
                        if src == aid)
        auth_drops = sum(row["auth_drop"] for (src, _dst), row in matrix.items()
                         if src == aid)
        counters[f"adv_attacker_{aid}_injected"] = injected
        counters[f"adv_attacker_{aid}_delivered"] = delivered
        counters[f"adv_attacker_{aid}_auth_drops"] = auth_drops
        totals["injected"] += injected
        totals["delivered"] += delivered
        totals["auth_drops"] += auth_drops
    counters["adv_frames_injected"] = totals["injected"]
    counters["adv_frames_delivered"] = totals["delivered"]
    counters["adv_auth_drops"] = totals["auth_drops"]
    return counters


def build_adversarial(
    scenario: AdversarialScenario,
    sim: Optional[Simulator] = None,
    trace: Optional[TraceRecorder] = None,
    rngs: Optional[RngRegistry] = None,
) -> AdversarialRig:
    """Wire one adversarial run without starting it.

    A caller-supplied ``trace`` keeps its own sink/flight attachments (no
    attribution or invariant check if it lacks them); by default the rig
    attaches an :class:`EventLog` sink and a :class:`FlightRecorder`.
    A caller-supplied ``rngs`` (e.g. the sanitizer's tripwire registry)
    must be seeded with ``scenario.seed`` to reproduce the default run.
    """
    rngs = rngs if rngs is not None else RngRegistry(scenario.seed)
    sim = sim if sim is not None else Simulator()
    if trace is None:
        log: Optional[EventLog] = EventLog()
        flight: Optional[FlightRecorder] = FlightRecorder(log)
        trace = TraceRecorder(sink=log, flight=flight)
    else:
        sink = getattr(trace, "sink", None)
        log = sink if isinstance(sink, EventLog) else None
        flight = trace.flight  # may be None

    topo = _topology_for(scenario, rngs)
    loss: LossModel
    if scenario.topology.startswith("star"):
        loss = BernoulliLoss(scenario.loss_rate)
    else:
        loss = PerLinkLoss(topo.link_loss)
    radio = Radio(sim, topo, loss, rngs, trace,
                  config=RadioConfig(collisions=True))
    if flight is not None:
        flight.observe_radio(radio)

    params = make_params(
        scenario.protocol, image_size=scenario.image_size, k=scenario.k,
        n=scenario.n, kprime=scenario.kprime, timing=scenario.timing,
    )
    image = CodeImage.synthetic(scenario.image_size, version=2,
                                seed=scenario.seed)
    tracker = CompletionTracker(trace)

    # Attackers halt once every victim holds the image: their periodic
    # processes would otherwise keep churning the event heap (and the trace)
    # long after there is anything left to attack.
    engines: List[AttackEngine] = []

    def on_complete(node: object) -> None:
        tracker(node)
        if tracker.all_done:
            for eng in engines:
                eng.halt_all()

    builder = _BUILDERS.get(scenario.protocol)
    if builder is None:
        raise ConfigError(f"unknown protocol {scenario.protocol!r}")
    kwargs = dict(image=image, on_complete=on_complete,
                  defense=scenario.defense)
    if scenario.protocol in _SECURED_PROTOCOLS:
        kwargs["snack_flood_threshold"] = scenario.snack_flood_threshold
        kwargs["control_auth"] = scenario.control_auth
    elif scenario.snack_flood_threshold is not None or scenario.control_auth:
        raise ConfigError(
            f"{scenario.protocol!r} has no SNACK flood guard / control auth")
    base, nodes, pre = builder(sim, radio, rngs, trace, params, **kwargs)

    plan = AttackPlan(scenario.attacks)
    context = AttackContext(base=base, nodes=tuple(nodes), preprocessed=pre)
    engine = AttackEngine(sim, radio, rngs, trace, plan, context=context)
    attackers = engine.deploy()
    engines.append(engine)

    if scenario.faults:
        for node in nodes:
            node.flash = NodeFlash(node.node_id)
        injector = FaultInjector(sim, radio, trace, [base] + nodes + attackers,
                                 FaultPlan(scenario.faults), rngs)
        injector.install()

    return AdversarialRig(
        scenario=scenario, sim=sim, trace=trace, log=log, flight=flight,
        tracker=tracker, radio=radio, base=base, nodes=list(nodes),
        engine=engine, attackers=attackers, image=image, params=params,
        pre=pre,
    )


def run_adversarial(
    scenario: AdversarialScenario,
    sim: Optional[Simulator] = None,
    trace: Optional[TraceRecorder] = None,
    rngs: Optional[RngRegistry] = None,
) -> RunResult:
    """Simulate one adversarial dissemination and return enriched metrics."""
    return build_adversarial(scenario, sim=sim, trace=trace, rngs=rngs).run()
