"""Analytical models from Section V of the paper.

* :func:`seluge_expected_tx` — expected data-packet transmissions for one
  Seluge page in the one-hop model (Theorem-1 analogue).
* :func:`ack_lr_expected_tx` — the ACK-based LR-Seluge round model that
  upper-bounds the real protocol (Theorem-2 analogue).
"""

from repro.analysis.onehop import (
    ack_lr_expected_tx,
    ack_lr_round_distribution,
    seluge_expected_tx,
    seluge_page_expected_tx,
)
from repro.analysis.distributions import (
    expected_max_geometric,
    binomial_pmf,
    binomial_tail_ge,
)
from repro.analysis.latency import (
    estimate_lr_seluge_latency,
    estimate_seluge_latency,
)

__all__ = [
    "seluge_expected_tx",
    "seluge_page_expected_tx",
    "ack_lr_expected_tx",
    "ack_lr_round_distribution",
    "expected_max_geometric",
    "binomial_pmf",
    "binomial_tail_ge",
    "estimate_seluge_latency",
    "estimate_lr_seluge_latency",
]
