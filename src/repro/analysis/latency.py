"""Analytical one-hop latency model (extension of Section V).

The paper analyses only data-packet *counts*; latency is left to
simulation.  This model composes the transmission-count models with the
protocol's timing constants to predict one-hop dissemination latency:

    T ≈ T_signature + Σ_units [ T_request + D_unit · t_slot
                                + (R_unit − 1) · t_round_gap ]

where ``D_unit`` is the expected data transmissions for the unit (from the
Section-V models), ``t_slot`` the per-packet air time plus TX gap,
``R_unit`` the expected number of request rounds, and ``t_round_gap`` the
re-request latency between rounds (timeout + aggregation).  The tests check
the prediction lands within a small factor of the simulator across loss
rates — good enough to dimension maintenance windows without running a
simulation.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.analysis.onehop import ack_lr_expected_tx, seluge_page_expected_tx
from repro.core.config import LRSelugeParams, ProtocolTiming, SelugeParams
from repro.net.radio import RadioConfig

__all__ = ["estimate_seluge_latency", "estimate_lr_seluge_latency"]


def _slot_seconds(radio: RadioConfig, frame_bytes: int, timing: ProtocolTiming) -> float:
    return radio.airtime(frame_bytes) + timing.tx_gap


def _unit_gap(timing: ProtocolTiming) -> float:
    """Fixed inter-unit overhead: quiet window + advertisement discovery."""
    return timing.data_quiet_window + timing.adv_i_min / 2.0


def _seluge_rounds(p: float, k: int, n_receivers: int) -> float:
    """Expected ARQ rounds per Seluge page.

    Every round clears a (1-p) fraction of each receiver's missing set; the
    last of ``k * N`` packet-receiver demands finishes after roughly
    ``log_{1/p}(k N)`` rounds.
    """
    if p <= 0.0:
        return 1.0
    return max(1.0, math.log(max(k * n_receivers, 2)) / math.log(1.0 / p))


def _lr_rounds(p: float) -> float:
    """Expected request rounds per LR-Seluge page.

    The n - k' redundancy absorbs most first-round losses, so only a short
    retry tail remains.
    """
    return 1.0 + 2.0 * p / (1.0 - p)


def estimate_seluge_latency(
    params: SelugeParams,
    p: float,
    n_receivers: int,
    radio: Optional[RadioConfig] = None,
) -> float:
    """Predicted one-hop dissemination latency for Seluge (seconds)."""
    radio = radio or RadioConfig()
    timing = params.timing
    wire = params.wire
    slot = _slot_seconds(radio, wire.data_packet_size(wire.data_payload), timing)
    round_gap = timing.request_timeout + timing.tx_aggregation_delay
    request_phase = timing.request_delay_max / 2.0 + timing.tx_aggregation_delay

    total = radio.airtime(wire.signature_packet_size()) + request_phase
    g = params.num_pages()
    m0 = params.hash_page_packets()
    rounds = _seluge_rounds(p, params.k, n_receivers)
    gap = _unit_gap(timing)
    # Hash page: m0 packets, all required.
    total += request_phase + gap + m0 * _max_geom(n_receivers, p) * slot
    total += (rounds - 1.0) * round_gap
    # Code pages.
    per_page = seluge_page_expected_tx(params.k, n_receivers, p)
    total += g * (request_phase + gap + per_page * slot + (rounds - 1.0) * round_gap)
    return total


def estimate_lr_seluge_latency(
    params: LRSelugeParams,
    p: float,
    n_receivers: int,
    radio: Optional[RadioConfig] = None,
) -> float:
    """Predicted one-hop dissemination latency for LR-Seluge (seconds)."""
    radio = radio or RadioConfig()
    timing = params.timing
    wire = params.wire
    slot = _slot_seconds(radio, wire.data_packet_size(wire.data_payload), timing)
    round_gap = timing.request_timeout + timing.tx_aggregation_delay
    request_phase = timing.request_delay_max / 2.0 + timing.tx_aggregation_delay

    total = radio.airtime(wire.signature_packet_size()) + request_phase
    g = params.num_pages()
    rounds = _lr_rounds(p)
    gap = _unit_gap(timing)
    # Page 0.
    d0 = ack_lr_expected_tx(1, params.k0prime, params.n0, n_receivers, p, trials=120)
    depth = int(math.log2(params.n0))
    slot0 = _slot_seconds(radio, wire.data_packet_size(wire.data_payload, depth), timing)
    total += request_phase + gap + d0 * slot0 + (rounds - 1.0) * round_gap
    # Code pages.
    per_page = ack_lr_expected_tx(1, params.resolved_kprime, params.n,
                                  n_receivers, p, trials=120)
    total += g * (request_phase + gap + per_page * slot + (rounds - 1.0) * round_gap)
    return total


def _max_geom(n_receivers: int, p: float) -> float:
    from repro.analysis.distributions import expected_max_geometric

    return expected_max_geometric(n_receivers, p)
