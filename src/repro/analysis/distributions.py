"""Probability helpers used by the Section-V models."""

from __future__ import annotations

import math
from functools import lru_cache

from repro.errors import ConfigError

__all__ = ["expected_max_geometric", "binomial_pmf", "binomial_tail_ge"]


def expected_max_geometric(n_receivers: int, p: float, tol: float = 1e-12) -> float:
    """E[max of ``n_receivers`` iid Geometric(1-p) variables] (support 1, 2, ...).

    Each variable counts the transmissions until one receiver's first
    success when every transmission is lost with probability ``p``.  Uses
    ``E[max] = sum_{t>=0} (1 - (1 - p^t)^N)``.
    """
    if n_receivers < 1:
        raise ConfigError(f"need at least one receiver, got {n_receivers}")
    if not 0.0 <= p < 1.0:
        raise ConfigError(f"loss probability {p} outside [0, 1)")
    if p == 0.0:
        return 1.0
    total = 0.0
    t = 0
    while True:
        term = 1.0 - (1.0 - p ** t) ** n_receivers
        total += term
        t += 1
        if term < tol and t > 1:
            break
        if t > 100_000:  # pragma: no cover - numeric guard
            break
    return total


@lru_cache(maxsize=200_000)
def _log_comb(n: int, k: int) -> float:
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def binomial_pmf(k: int, n: int, q: float) -> float:
    """P[Binomial(n, q) = k]."""
    if k < 0 or k > n:
        return 0.0
    if q <= 0.0:
        return 1.0 if k == 0 else 0.0
    if q >= 1.0:
        return 1.0 if k == n else 0.0
    return math.exp(_log_comb(n, k) + k * math.log(q) + (n - k) * math.log(1.0 - q))


def binomial_tail_ge(k: int, n: int, q: float) -> float:
    """P[Binomial(n, q) >= k]."""
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    return sum(binomial_pmf(i, n, q) for i in range(k, n + 1))
