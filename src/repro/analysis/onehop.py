"""One-hop analytical models (paper Section V / Fig. 3).

The paper analyses one local sender broadcasting to ``N`` receivers, each
reception lost independently with probability ``p``.

**Seluge** (Theorem-1 analogue).  A page has ``k`` packets and every
receiver needs every one of them; with per-round retransmission of exactly
the missing packets, the transmissions of one packet form the maximum of
``N`` iid Geometric(1-p) variables:

    E[D_seluge] = k * sum_{t>=0} (1 - (1 - p^t)^N).

**ACK-based LR-Seluge** (Theorem-2 analogue, an upper bound on the real
protocol).  Transmission proceeds in rounds.  At the start of each round
the sender learns every receiver's deficit ``d_i`` (packets still needed to
reach ``k'`` out of ``n``) and transmits ``m = max_i d_i`` *fresh* encoded
packets while fresh packets remain — a fresh packet helps every unsatisfied
receiver independently with probability ``1 - p`` — after which it falls
back to per-packet retransmission of each receiver's specific missing
packets (Seluge-like).  We evaluate the expectation exactly for ``N = 1``
by dynamic programming and by seeded Monte-Carlo for ``N > 1``.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.analysis.distributions import (
    binomial_pmf,
    expected_max_geometric,
)
from repro.errors import ConfigError
from repro.sim.rng import derived_stream

__all__ = [
    "seluge_page_expected_tx",
    "seluge_expected_tx",
    "ack_lr_expected_tx",
    "ack_lr_round_distribution",
]


def seluge_page_expected_tx(k: int, n_receivers: int, p: float) -> float:
    """Expected data transmissions for one Seluge page of ``k`` packets."""
    return k * expected_max_geometric(n_receivers, p)


def seluge_expected_tx(pages: int, k: int, n_receivers: int, p: float) -> float:
    """Expected data transmissions for a ``pages``-page Seluge image."""
    if pages < 1:
        raise ConfigError(f"need at least one page, got {pages}")
    return pages * seluge_page_expected_tx(k, n_receivers, p)


@lru_cache(maxsize=100_000)
def _single_receiver_fresh_dp(deficit: int, fresh: int, p: float) -> float:
    """Exact E[tx] for one receiver: ``deficit`` needed, ``fresh`` fresh left.

    Round model: send ``m = min(deficit, fresh)`` fresh packets, the receiver
    keeps Binomial(m, 1-p) of them; when fresh packets run out, each missing
    packet must be retransmitted individually (Geometric(1-p) each).
    """
    if deficit <= 0:
        return 0.0
    if fresh <= 0:
        # Retransmission regime: each of the remaining `deficit` packets
        # independently needs Geometric(1-p) transmissions.
        return deficit / (1.0 - p)
    m = min(deficit, fresh)
    expected = float(m)
    q = 1.0 - p
    for received in range(m + 1):
        prob = binomial_pmf(received, m, q)
        if prob > 0.0:
            expected += prob * _single_receiver_fresh_dp(deficit - received, fresh - m, p)
    return expected


def ack_lr_expected_tx(
    pages: int,
    kprime: int,
    n: int,
    n_receivers: int,
    p: float,
    trials: int = 400,
    seed: int = 12345,
    rng: Optional[random.Random] = None,
) -> float:
    """Expected data transmissions for an ACK-based LR-Seluge image.

    Exact DP when ``n_receivers == 1``; deterministic-seed Monte-Carlo over
    the round model otherwise.  Callers embedding this in a larger seeded
    experiment may inject their own ``rng`` stream; by default one is
    derived from ``seed``.
    """
    if not 0.0 <= p < 1.0:
        raise ConfigError(f"loss probability {p} outside [0, 1)")
    if kprime > n:
        raise ConfigError(f"k' ({kprime}) cannot exceed n ({n})")
    if n_receivers == 1:
        per_page = _single_receiver_fresh_dp(kprime, n, p)
        return pages * per_page
    if rng is None:
        rng = derived_stream("analysis/onehop/ack-tx", seed)
    total = 0.0
    for _ in range(trials):
        total += _simulate_ack_rounds(pages, kprime, n, n_receivers, p, rng)[0]
    return total / trials


def ack_lr_round_distribution(
    kprime: int,
    n: int,
    n_receivers: int,
    p: float,
    trials: int = 2000,
    seed: int = 999,
    rng: Optional[random.Random] = None,
) -> List[float]:
    """Empirical distribution of the number of rounds one page takes.

    Returns probabilities for 1, 2, 3, ... rounds (the paper highlights the
    1-round/2-round regime shift between p = 0.3 and p = 0.4).
    """
    if rng is None:
        rng = derived_stream("analysis/onehop/rounds", seed)
    counts: dict = {}
    for _ in range(trials):
        _, rounds = _simulate_ack_rounds(1, kprime, n, n_receivers, p, rng)
        counts[rounds] = counts.get(rounds, 0) + 1
    top = max(counts)
    return [counts.get(r, 0) / trials for r in range(1, top + 1)]


def _simulate_ack_rounds(
    pages: int,
    kprime: int,
    n: int,
    n_receivers: int,
    p: float,
    rng: random.Random,
) -> Tuple[int, int]:
    """One Monte-Carlo realization; returns (transmissions, rounds of last page).

    Exact per-index bookkeeping: while fresh (never-sent) encoded packets
    remain, each round transmits ``max_i d_i`` of them; afterwards each
    round transmits the union of the receivers' missing indices.
    """
    q = 1.0 - p
    total_tx = 0
    rounds_last = 0
    for _ in range(pages):
        deficits = [kprime] * n_receivers
        missing: List[set] = [set() for _ in range(n_receivers)]
        next_fresh = 0
        rounds = 0
        while any(d > 0 for d in deficits):
            rounds += 1
            if next_fresh < n:
                m = min(max(deficits), n - next_fresh)
                batch = range(next_fresh, next_fresh + m)
                next_fresh += m
                total_tx += m
                for i in range(n_receivers):
                    if deficits[i] <= 0:
                        continue
                    for j in batch:
                        if rng.random() < q:
                            if deficits[i] > 0:
                                deficits[i] -= 1
                        else:
                            missing[i].add(j)
            else:
                union = set()
                for i in range(n_receivers):
                    if deficits[i] > 0:
                        union |= missing[i]
                total_tx += len(union)
                # Retransmit in index order: iterating the set directly would
                # tie the rng consumption order to hash order (REP003).
                for j in sorted(union):
                    for i in range(n_receivers):
                        if deficits[i] > 0 and j in missing[i]:
                            if rng.random() < q:
                                missing[i].discard(j)
                                deficits[i] -= 1
        rounds_last = rounds
    return total_tx, rounds_last
