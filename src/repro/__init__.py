"""LR-Seluge: loss-resilient and secure code dissemination for WSNs.

A complete reproduction of Zhang & Zhang, "LR-Seluge: Loss-Resilient and
Secure Code Dissemination in Wireless Sensor Networks" (ICDCS 2011) —
protocol, baselines (Deluge, Seluge, Rateless Deluge), every substrate
(discrete-event simulation, CSMA broadcast radio, Trickle, erasure codes,
cryptography), adversary models, analytical models, and an experiment
harness that regenerates every figure and table of the paper's evaluation.

Quick start::

    from repro.experiments import OneHopScenario, run_one_hop

    result = run_one_hop(OneHopScenario(protocol="lr-seluge", loss_rate=0.2))
    assert result.images_ok

Subpackages
-----------
``repro.sim``
    Deterministic discrete-event engine, timers, seeded RNG streams.
``repro.net``
    Frames, loss models, topologies (incl. TinyOS-style file I/O), radio.
``repro.trickle``
    RFC-6206-style advertisement timer.
``repro.erasure``
    GF(256) Reed-Solomon, random linear, LT, and Tornado-style codes.
``repro.crypto``
    Hash images, Merkle trees, ECDSA (P-192), puzzles, key chains,
    cluster keys.
``repro.core``
    The paper's machinery: preprocessing, verification, TX scheduling.
``repro.protocols``
    Deluge / Seluge / LR-Seluge / Rateless Deluge, attacks, control auth.
``repro.analysis``
    Section-V transmission models plus an analytical latency model.
``repro.experiments``
    Scenarios, metrics, energy accounting, sweeps, figure/table harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
