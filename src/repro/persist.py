"""Crash-safe artifact persistence: the sanctioned atomic-write helper.

Every result-shaped artifact this repository writes — run manifests, figure
CSV/JSON exports, benchmark JSON, structured traces, campaign checkpoints —
goes through this module, so a process killed mid-write can never leave a
truncated or half-updated file behind.  The recipe is the classic one:

1. write the full content to a temporary file *in the target directory*
   (same filesystem, so the rename below is atomic),
2. flush and ``os.fsync`` the temporary file,
3. ``os.replace`` it over the target (atomic on POSIX and Windows).

A reader therefore always sees either the previous complete artifact or the
new complete artifact, never a mix.  replint rule REP012 enforces that
``src/`` code does not open artifact files for writing anywhere else.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable, List, Union

__all__ = [
    "atomic_write_text",
    "atomic_write_json",
    "atomic_write_jsonl",
    "atomic_append_jsonl",
    "read_jsonl",
]


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> Path:
    """Atomically replace ``path`` with ``text`` (temp file + fsync + rename)."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent) or ".", prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        # The temp file is garbage on any failure (including KeyboardInterrupt
        # between write and rename) — remove it so retries start clean.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def atomic_write_json(
    path: Union[str, Path],
    obj: Any,
    indent: int = 2,
    sort_keys: bool = False,
) -> Path:
    """Atomically write ``obj`` as JSON with a trailing newline."""
    return atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n"
    )


def atomic_write_jsonl(path: Union[str, Path], records: Iterable[Any]) -> Path:
    """Atomically write an iterable of records as one-line-per-record JSONL.

    The whole file is rewritten through the temp-then-rename path, so a
    journal updated through this function can never contain a torn line.
    Callers that append frequently (the campaign checkpoint) keep the record
    list in memory and rewrite; journal lines are small next to the work each
    one records, so the quadratic byte cost is noise.
    """
    lines = [json.dumps(record, sort_keys=True) for record in records]
    text = "\n".join(lines) + "\n" if lines else ""
    return atomic_write_text(path, text)


def atomic_append_jsonl(path: Union[str, Path], record: Any) -> Path:
    """Append one JSON record to a JSONL file durably.

    Unlike :func:`atomic_write_jsonl`, this does not rewrite the file — it is
    meant for append-only stores that outlive single runs (the bench history
    at ``results/perf/history.jsonl``).  The record is serialised to a single
    line first, then written with one ``O_APPEND`` write and fsynced.  POSIX
    makes small O_APPEND writes atomic with respect to other appenders, and a
    crash mid-write can at worst leave one torn *trailing* line, which
    :func:`read_jsonl` already tolerates — earlier records are never damaged.
    """
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True) + "\n"
    fd = os.open(str(target), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
        os.fsync(fd)
    finally:
        os.close(fd)
    return target


def read_jsonl(path: Union[str, Path]) -> List[Any]:
    """Read a JSONL file, tolerating a torn or malformed trailing line.

    Journals written by :func:`atomic_write_jsonl` are never torn, but a
    journal produced by a foreign writer (or a partially copied file) may
    end mid-record; recovery keeps every complete record rather than
    failing the whole resume.
    """
    target = Path(path)
    if not target.exists():
        return []
    records: List[Any] = []
    for line in target.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            # A torn tail is expected after a crash mid-append from a
            # non-atomic writer; anything after it is unreadable anyway.
            break
    return records
