"""Crash-safe artifact persistence: the sanctioned atomic-write helper.

Every result-shaped artifact this repository writes — run manifests, figure
CSV/JSON exports, benchmark JSON, structured traces, campaign checkpoints —
goes through this module, so a process killed mid-write can never leave a
truncated or half-updated file behind.  The recipe is the classic one:

1. write the full content to a temporary file *in the target directory*
   (same filesystem, so the rename below is atomic),
2. flush and ``fsync`` the temporary file,
3. ``replace`` it over the target (atomic on POSIX and Windows),
4. ``fsync`` the target's parent directory, so the *rename itself* is
   durable across power loss (a metadata-only change lives in the directory
   inode, which step 3 does not flush).

A reader therefore always sees either the previous complete artifact or the
new complete artifact, never a mix.  replint rule REP012 enforces that
``src/`` code does not open artifact files for writing anywhere else, and
REP019 enforces that raw filesystem syscalls stay behind this module's
:class:`FileSystem` seam.

The seam is the storage chaos engine's interposition point
(:mod:`repro.chaos`): every byte this module moves goes through the active
:class:`FileSystem`, so a :class:`repro.chaos.FaultyFS` installed with
:func:`use_fs` can deterministically inject ENOSPC, EIO, short writes, and
crash points into any persist operation without monkeypatching ``os``.
"""

from __future__ import annotations

import errno as _errno
import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, List, Optional, Tuple, Union
from contextlib import contextmanager

from repro.errors import PersistError

__all__ = [
    "FileSystem",
    "current_fs",
    "use_fs",
    "atomic_write_text",
    "atomic_write_json",
    "atomic_write_jsonl",
    "atomic_append_jsonl",
    "read_jsonl",
    "read_jsonl_report",
    "JsonlReport",
    "PersistError",
    "describe_persist_error",
]

_log = logging.getLogger("repro.persist")

# Read the last 4 KiB when hunting for the newline that terminates the last
# complete record; torn tails are at most one record long.
_TAIL_CHUNK = 4096


class FileSystem:
    """The raw syscall surface persist uses — one method per fs operation.

    The default instance delegates straight to ``os``.  The chaos engine
    substitutes a :class:`repro.chaos.FaultyFS` via :func:`use_fs`; rules
    REP012/REP019 keep every artifact write in ``src/`` behind this seam, so
    swapping the instance interposes on *all* durable state the repository
    produces.
    """

    def open(self, path: str, flags: int, mode: int = 0o644) -> int:
        return os.open(path, flags, mode)

    def write(self, fd: int, data: bytes) -> int:
        return os.write(fd, data)

    def fsync(self, fd: int) -> None:
        os.fsync(fd)

    def close(self, fd: int) -> None:
        os.close(fd)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def truncate(self, fd: int, length: int) -> None:
        os.ftruncate(fd, length)

    def unlink(self, path: str) -> None:
        os.unlink(path)


_REAL_FS = FileSystem()
_active_fs: FileSystem = _REAL_FS


def current_fs() -> FileSystem:
    """The filesystem seam persist operations currently run through."""
    return _active_fs


@contextmanager
def use_fs(fs: FileSystem) -> Iterator[FileSystem]:
    """Install ``fs`` as the active seam for the duration of the block.

    This is how the chaos engine interposes: process-local, re-entrant
    (nesting restores the previous seam), and never leaks past the block
    even when a simulated crash unwinds through it.
    """
    global _active_fs
    previous = _active_fs
    _active_fs = fs
    try:
        yield fs
    finally:
        _active_fs = previous


def _write_all(fs: FileSystem, fd: int, data: bytes, path: str) -> None:
    """Write every byte of ``data``, looping on short writes.

    ``os.write`` may write fewer bytes than asked (signals, quota edges,
    near-full disks); silently accepting a short count would truncate a
    record.  A zero-progress write or an OSError mid-record surfaces as a
    typed :class:`PersistError` carrying how many bytes actually landed, so
    callers (and the chaos invariants) can distinguish "nothing happened"
    from "a torn tail is now on disk".
    """
    view = memoryview(data)
    written = 0
    while written < len(view):
        try:
            n = fs.write(fd, bytes(view[written:]))
        except OSError as exc:
            raise PersistError(
                f"write to {path} failed after {written}/{len(data)} bytes: "
                f"{exc}",
                path=path, partial_bytes=written, errno=exc.errno,
            ) from exc
        if n <= 0:
            raise PersistError(
                f"write to {path} made no progress after "
                f"{written}/{len(data)} bytes",
                path=path, partial_bytes=written,
            )
        written += n


def _fsync_parent_dir(fs: FileSystem, target: Path) -> None:
    """Flush the directory entry so a completed rename survives power loss.

    POSIX only — directories cannot be opened for fsync on Windows, where
    ``os.replace`` already implies the needed metadata flush semantics for
    our single-writer journals.
    """
    if os.name != "posix":  # pragma: no cover - exercised on POSIX CI only
        return
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    fd = fs.open(str(target.parent) or ".", flags)
    try:
        fs.fsync(fd)
    finally:
        fs.close(fd)


def _temp_path(target: Path) -> Path:
    """A same-directory temp name; pid-suffixed so concurrent *processes*
    writing different artifacts in one directory cannot collide.  Artifact
    files are single-writer by design, so no in-process uniqueness needed."""
    return target.with_name(f".{target.name}.{os.getpid()}.tmp")


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> Path:
    """Atomically replace ``path`` with ``text`` (temp + fsync + rename + dir fsync)."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    fs = _active_fs
    tmp = _temp_path(target)
    data = text.encode(encoding)
    try:
        fd = fs.open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            _write_all(fs, fd, data, str(tmp))
            fs.fsync(fd)
        finally:
            fs.close(fd)
        fs.replace(str(tmp), str(target))
    except BaseException:
        # The temp file is garbage on any failure (including KeyboardInterrupt
        # between write and rename) — remove it so retries start clean.  A
        # simulated crash (ChaosCrash) freezes the fs seam, so under chaos the
        # droppings stay on disk exactly as a real SIGKILL would leave them.
        try:
            fs.unlink(str(tmp))
        except OSError:
            pass
        raise
    _fsync_parent_dir(fs, target)
    return target


def atomic_write_json(
    path: Union[str, Path],
    obj: Any,
    indent: int = 2,
    sort_keys: bool = False,
) -> Path:
    """Atomically write ``obj`` as JSON with a trailing newline."""
    return atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n"
    )


def atomic_write_jsonl(path: Union[str, Path], records: Iterable[Any]) -> Path:
    """Atomically write an iterable of records as one-line-per-record JSONL.

    The whole file is rewritten through the temp-then-rename path, so a
    journal updated through this function can never contain a torn line.
    Append-heavy journals (the campaign checkpoint, the bench history) use
    :func:`atomic_append_jsonl` instead and reserve this full rewrite for
    their crash-safe *compaction* step: either the old appended journal or
    the new compacted one is on disk, never a mix.
    """
    lines = [json.dumps(record, sort_keys=True) for record in records]
    text = "\n".join(lines) + "\n" if lines else ""
    return atomic_write_text(path, text)


def _repair_torn_tail(fs: FileSystem, fd: int, path: str) -> int:
    """Truncate a torn trailing record before appending after a crash.

    If the file does not end in a newline, the previous appender died
    mid-record.  Appending after the fragment would turn it into a torn
    *interior* line — permanently corrupting the journal instead of leaving
    a recoverable tail — so the fragment is dropped back to the last
    newline (or to empty).  Returns the number of bytes discarded.
    """
    size = os.lseek(fd, 0, os.SEEK_END)
    if size == 0:
        return 0
    os.lseek(fd, size - 1, os.SEEK_SET)
    if os.read(fd, 1) == b"\n":
        return 0
    # Scan backwards in chunks for the newline ending the last full record.
    end = size - 1  # everything in [keep, size) is the torn fragment
    keep = 0
    pos = end
    while pos > 0:
        start = max(0, pos - _TAIL_CHUNK)
        os.lseek(fd, start, os.SEEK_SET)
        chunk = os.read(fd, pos - start)
        nl = chunk.rfind(b"\n")
        if nl >= 0:
            keep = start + nl + 1
            break
        pos = start
    fs.truncate(fd, keep)
    dropped = size - keep
    _log.warning(
        "repaired torn tail in %s: dropped %d byte(s) of a partial record",
        path, dropped,
    )
    return dropped


def atomic_append_jsonl(path: Union[str, Path], record: Any) -> Path:
    """Append one JSON record to a JSONL file durably.

    Unlike :func:`atomic_write_jsonl`, this does not rewrite the file — it is
    meant for append-only stores that outlive single runs (the bench history
    at ``results/perf/history.jsonl``, the campaign checkpoint journal).  The
    record is serialised to a single line first, then written with one
    ``O_APPEND`` write (looping on short writes) and fsynced.  POSIX makes
    small O_APPEND writes atomic with respect to other appenders, and a crash
    mid-write can at worst leave one torn *trailing* line, which the read
    path tolerates — earlier records are never damaged.  Before appending,
    any torn tail left by a previous crash is truncated away so the torn
    fragment can never become an unrecoverable interior line.
    """
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    fs = _active_fs
    line = json.dumps(record, sort_keys=True) + "\n"
    fd = fs.open(str(target), os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        _repair_torn_tail(fs, fd, str(target))
        _write_all(fs, fd, line.encode("utf-8"), str(target))
        fs.fsync(fd)
    finally:
        fs.close(fd)
    return target


@dataclass
class JsonlReport:
    """What a tolerant JSONL read actually found, line by line.

    Resume paths need to tell an *expected* state (a torn trailing line from
    a crash mid-append) from an *alarming* one (malformed lines in the
    journal's interior, which no crash of a sanctioned writer can produce).
    """

    records: List[Any] = field(default_factory=list)
    total_lines: int = 0          # non-empty lines seen
    torn_tail: bool = False       # last non-empty line failed to parse
    skipped_interior: int = 0     # malformed lines *before* the last one

    @property
    def clean(self) -> bool:
        return not self.torn_tail and self.skipped_interior == 0


def read_jsonl_report(path: Union[str, Path]) -> JsonlReport:
    """Read a JSONL file tolerantly and report exactly what was skipped.

    Every parseable record is kept — including records *after* a malformed
    interior line, which the old read path silently discarded.  A malformed
    final line is classified as a torn tail (the expected post-crash state
    of an append-only store); malformed interior lines are counted
    separately so callers can raise the alarm on real corruption.  Both
    conditions log a warning.
    """
    target = Path(path)
    report = JsonlReport()
    if not target.exists():
        return report
    lines = [
        stripped
        for raw in target.read_text(encoding="utf-8").splitlines()
        if (stripped := raw.strip())
    ]
    report.total_lines = len(lines)
    bad_lines: List[int] = []
    for i, line in enumerate(lines):
        try:
            report.records.append(json.loads(line))
        except json.JSONDecodeError:
            bad_lines.append(i)
    if bad_lines:
        if bad_lines[-1] == len(lines) - 1:
            report.torn_tail = True
            bad_lines = bad_lines[:-1]
        report.skipped_interior = len(bad_lines)
        if report.torn_tail:
            _log.warning(
                "%s: torn trailing line (crash mid-append?); kept %d "
                "complete record(s)", target, len(report.records),
            )
        if report.skipped_interior:
            _log.warning(
                "%s: skipped %d malformed interior line(s) — this is journal "
                "corruption, not a torn tail; kept %d record(s)",
                target, report.skipped_interior, len(report.records),
            )
    return report


def read_jsonl(path: Union[str, Path]) -> List[Any]:
    """Read a JSONL file, tolerating torn or malformed lines (records only).

    Convenience wrapper over :func:`read_jsonl_report` for callers that do
    not care why lines were skipped; resume paths that must distinguish a
    torn tail from interior corruption use the report form.
    """
    return read_jsonl_report(path).records


def _errno_name(code: Optional[int]) -> str:
    if code is None:
        return "?"
    return _errno.errorcode.get(code, str(code))


def describe_persist_error(exc: PersistError) -> Tuple[str, bool]:
    """Human summary of a persist failure and whether bytes hit the disk.

    ``partial_bytes > 0`` means a torn trailing record may now exist on the
    target file — the next append repairs it, but reporting layers (chaos
    reports, degraded-telemetry notes) want to say so explicitly.
    """
    partial = exc.partial_bytes is not None and exc.partial_bytes > 0
    return (
        f"{_errno_name(exc.errno)} on {exc.path or '?'}"
        + (f" after {exc.partial_bytes} byte(s)" if partial else ""),
        partial,
    )
