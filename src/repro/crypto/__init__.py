"""Cryptographic substrate used by Seluge and LR-Seluge.

All primitives are real (not mocked): truncated SHA-256 *hash images* as used
throughout WSN protocols, a Merkle hash tree with authentication paths, a
pure-Python ECDSA over NIST P-192, message-specific puzzles (the weak
authenticator that guards signature packets against flooding), and HMAC-based
cluster keys for advertisement/SNACK authentication.
"""

from repro.crypto.hashing import HashImage, hash_image
from repro.crypto.merkle import MerkleTree
from repro.crypto.ecdsa import EcdsaKeyPair, EcdsaSignature, generate_keypair, sign, verify
from repro.crypto.puzzle import MessageSpecificPuzzle
from repro.crypto.keys import ClusterKey
from repro.crypto.keychain import KeyChain, verify_chain_key

__all__ = [
    "HashImage",
    "hash_image",
    "MerkleTree",
    "EcdsaKeyPair",
    "EcdsaSignature",
    "generate_keypair",
    "sign",
    "verify",
    "MessageSpecificPuzzle",
    "ClusterKey",
    "KeyChain",
    "verify_chain_key",
]
