"""Pure-Python ECDSA over NIST P-192.

The base station signs the Merkle root once per code image; sensor nodes
verify that single signature (Section III-A notes a Tmote Sky verifies an
ECDSA signature in ~1.12 s, so one verification per image is affordable).
This module implements the real algorithm — keygen, deterministic signing
(RFC-6979-style nonce derivation via HMAC-SHA256), and verification — over
the NIST P-192 curve, with Jacobian-coordinate point arithmetic for speed.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import AuthenticationError

__all__ = [
    "P192",
    "EcdsaKeyPair",
    "EcdsaSignature",
    "generate_keypair",
    "sign",
    "verify",
]


@dataclass(frozen=True)
class CurveParams:
    """Short-Weierstrass curve y^2 = x^3 + ax + b over F_p with base point G."""

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    order: int

    @property
    def byte_len(self) -> int:
        return (self.p.bit_length() + 7) // 8


P192 = CurveParams(
    name="NIST P-192",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFC,
    b=0x64210519E59C80E70FA7E9AB72243049FEB8DEECC146B9B1,
    gx=0x188DA80EB03090F67CBF20EB43A18800F4FF0AFD82FF1012,
    gy=0x07192B95FFC8DA78631011ED6B24CDD573F977A11E794811,
    order=0xFFFFFFFFFFFFFFFFFFFFFFFF99DEF836146BC9B1B4D22831,
)

# A point is (X, Y, Z) in Jacobian coordinates; None is the point at infinity.
_JPoint = Optional[Tuple[int, int, int]]


def _jac_double(pt: _JPoint, curve: CurveParams) -> _JPoint:
    if pt is None:
        return None
    x, y, z = pt
    if y == 0:
        return None
    p = curve.p
    ysq = (y * y) % p
    s = (4 * x * ysq) % p
    m = (3 * x * x + curve.a * pow(z, 4, p)) % p
    nx = (m * m - 2 * s) % p
    ny = (m * (s - nx) - 8 * ysq * ysq) % p
    nz = (2 * y * z) % p
    return (nx, ny, nz)


def _jac_add(p1: _JPoint, p2: _JPoint, curve: CurveParams) -> _JPoint:
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    p = curve.p
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    z1sq = (z1 * z1) % p
    z2sq = (z2 * z2) % p
    u1 = (x1 * z2sq) % p
    u2 = (x2 * z1sq) % p
    s1 = (y1 * z2sq * z2) % p
    s2 = (y2 * z1sq * z1) % p
    if u1 == u2:
        if s1 != s2:
            return None
        return _jac_double(p1, curve)
    h = (u2 - u1) % p
    r = (s2 - s1) % p
    hsq = (h * h) % p
    hcu = (hsq * h) % p
    u1hsq = (u1 * hsq) % p
    nx = (r * r - hcu - 2 * u1hsq) % p
    ny = (r * (u1hsq - nx) - s1 * hcu) % p
    nz = (h * z1 * z2) % p
    return (nx, ny, nz)


def _jac_mul(k: int, pt: _JPoint, curve: CurveParams) -> _JPoint:
    result: _JPoint = None
    addend = pt
    while k:
        if k & 1:
            result = _jac_add(result, addend, curve)
        addend = _jac_double(addend, curve)
        k >>= 1
    return result


def _to_affine(pt: _JPoint, curve: CurveParams) -> Optional[Tuple[int, int]]:
    if pt is None:
        return None
    x, y, z = pt
    zinv = pow(z, curve.p - 2, curve.p)
    zinv2 = (zinv * zinv) % curve.p
    return ((x * zinv2) % curve.p, (y * zinv2 * zinv) % curve.p)


def _base_point(curve: CurveParams) -> _JPoint:
    return (curve.gx, curve.gy, 1)


def _hash_to_int(message: bytes, curve: CurveParams) -> int:
    digest = hashlib.sha256(message).digest()
    e = int.from_bytes(digest, "big")
    excess = 8 * len(digest) - curve.order.bit_length()
    if excess > 0:
        e >>= excess
    return e


def _rfc6979_nonce(priv: int, msg_hash_int: int, curve: CurveParams) -> int:
    """Deterministic per-message nonce (RFC 6979 with SHA-256)."""
    qlen = curve.order.bit_length()
    holen = 32
    rolen = (qlen + 7) // 8
    bx = priv.to_bytes(rolen, "big") + (msg_hash_int % curve.order).to_bytes(rolen, "big")
    v = b"\x01" * holen
    k = b"\x00" * holen
    k = hmac.new(k, v + b"\x00" + bx, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + bx, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        t = b""
        while len(t) < rolen:
            v = hmac.new(k, v, hashlib.sha256).digest()
            t += v
        candidate = int.from_bytes(t[:rolen], "big")
        excess = 8 * rolen - qlen
        if excess > 0:
            candidate >>= excess
        if 1 <= candidate < curve.order:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


@dataclass(frozen=True)
class EcdsaSignature:
    """An ECDSA signature pair (r, s)."""

    r: int
    s: int

    def to_bytes(self, curve: CurveParams = P192) -> bytes:
        n = curve.byte_len
        return self.r.to_bytes(n, "big") + self.s.to_bytes(n, "big")

    @classmethod
    def from_bytes(cls, raw: bytes, curve: CurveParams = P192) -> "EcdsaSignature":
        n = curve.byte_len
        if len(raw) != 2 * n:
            raise AuthenticationError(f"signature must be {2 * n} bytes, got {len(raw)}")
        return cls(int.from_bytes(raw[:n], "big"), int.from_bytes(raw[n:], "big"))


@dataclass(frozen=True)
class EcdsaKeyPair:
    """Private scalar and public point."""

    private: int
    public: Tuple[int, int]
    curve: CurveParams = P192


def generate_keypair(seed: int, curve: CurveParams = P192) -> EcdsaKeyPair:
    """Derive a keypair deterministically from an integer seed.

    Deterministic derivation keeps simulations reproducible; the scalar is
    a hash of the seed reduced into [1, order).
    """
    digest = hashlib.sha256(f"ecdsa-key:{seed}".encode()).digest()
    priv = (int.from_bytes(digest, "big") % (curve.order - 1)) + 1
    pub = _to_affine(_jac_mul(priv, _base_point(curve), curve), curve)
    if pub is None:
        raise AssertionError('invariant violated: pub is not None')
    return EcdsaKeyPair(private=priv, public=pub, curve=curve)


def sign(message: bytes, keypair: EcdsaKeyPair) -> EcdsaSignature:
    """Sign ``message`` (hashed with SHA-256) with deterministic nonce."""
    curve = keypair.curve
    e = _hash_to_int(message, curve)
    k = _rfc6979_nonce(keypair.private, e, curve)
    while True:
        point = _to_affine(_jac_mul(k, _base_point(curve), curve), curve)
        if point is None:
            raise AssertionError('invariant violated: point is not None')
        r = point[0] % curve.order
        if r == 0:
            k = (k + 1) % curve.order or 1
            continue
        kinv = pow(k, curve.order - 2, curve.order)
        s = (kinv * (e + r * keypair.private)) % curve.order
        if s == 0:
            k = (k + 1) % curve.order or 1
            continue
        return EcdsaSignature(r, s)


def verify(
    message: bytes,
    signature: EcdsaSignature,
    public: Tuple[int, int],
    curve: CurveParams = P192,
) -> bool:
    """Verify ``signature`` on ``message`` under public key ``public``."""
    r, s = signature.r, signature.s
    if not (1 <= r < curve.order and 1 <= s < curve.order):
        return False
    e = _hash_to_int(message, curve)
    w = pow(s, curve.order - 2, curve.order)
    u1 = (e * w) % curve.order
    u2 = (r * w) % curve.order
    pub_jac: _JPoint = (public[0], public[1], 1)
    point = _jac_add(
        _jac_mul(u1, _base_point(curve), curve),
        _jac_mul(u2, pub_jac, curve),
        curve,
    )
    affine = _to_affine(point, curve)
    if affine is None:
        return False
    return affine[0] % curve.order == r
