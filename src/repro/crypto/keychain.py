"""One-way hash key chain (the source of puzzle keys across code versions).

In Seluge, the message-specific puzzle key for code version ``v`` is the
``v``-th element of a one-way key chain: the network owner draws a random
chain tail ``K_n``, computes ``K_i = H(K_{i+1})`` down to the commitment
``K_0``, and preloads every node with ``K_0``.  Releasing ``K_v`` with
version ``v``'s signature packet lets nodes authenticate the key itself in
``v`` hash operations (``H^v(K_v) == K_0``) while future keys stay
unpredictable — so an adversary cannot pre-compute puzzle solutions for a
version that has not been released.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.errors import AuthenticationError, ConfigError

__all__ = ["KeyChain", "verify_chain_key"]

_KEY_LEN = 8


def _advance(key: bytes) -> bytes:
    return hashlib.sha256(b"keychain|" + key).digest()[:_KEY_LEN]


class KeyChain:
    """Owner-side chain: generates and discloses per-version keys."""

    def __init__(self, length: int, seed: int = 0) -> None:
        if length < 1:
            raise ConfigError(f"chain length must be >= 1, got {length}")
        self.length = length
        tail = hashlib.sha256(f"keychain-tail:{seed}".encode()).digest()[:_KEY_LEN]
        # chain[i] = K_i, with K_length = tail and K_0 the public commitment.
        chain: List[bytes] = [b""] * (length + 1)
        chain[length] = tail
        for i in range(length - 1, -1, -1):
            chain[i] = _advance(chain[i + 1])
        self._chain = chain

    @property
    def commitment(self) -> bytes:
        """K_0 — preloaded on every sensor node before deployment."""
        return self._chain[0]

    def key_for_version(self, version: int) -> bytes:
        """Disclose K_version (the puzzle key for that code image)."""
        if not 1 <= version <= self.length:
            raise ConfigError(
                f"version {version} outside chain range [1, {self.length}]"
            )
        return self._chain[version]


def verify_chain_key(key: bytes, version: int, commitment: bytes,
                     max_length: int = 10_000) -> bool:
    """Node-side check: does ``H^version(key)`` reach the commitment?

    Costs ``version`` hash operations.  Returns False for out-of-range
    versions rather than looping unboundedly.
    """
    if not 1 <= version <= max_length:
        return False
    value = key
    for _ in range(version):
        value = _advance(value)
    return value == commitment


def require_chain_key(key: bytes, version: int, commitment: bytes) -> None:
    """Raise :class:`AuthenticationError` unless the disclosed key verifies."""
    if not verify_chain_key(key, version, commitment):
        raise AuthenticationError(f"key chain verification failed for version {version}")
