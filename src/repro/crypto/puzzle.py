"""Message-specific puzzles — the weak authenticator on signature packets.

Seluge (and LR-Seluge) attach a cheap-to-verify, moderately-expensive-to-forge
puzzle to the signature packet so that a flood of bogus signature packets is
filtered by one hash operation each instead of one ECDSA verification each.

We implement the hash-preimage flavour: the sender searches for a solution
``s`` such that ``H(message || key || s)`` ends in ``difficulty`` zero bits.
Verification is a single hash.  The per-image puzzle *key* is released with
the message (in the full scheme it comes from a one-way key chain; for one
dissemination session a fresh random key gives the same filtering behaviour,
which is what the simulations measure).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["MessageSpecificPuzzle", "PuzzleSolution"]


@dataclass(frozen=True)
class PuzzleSolution:
    """A solved puzzle: the released key and the found solution value."""

    key: bytes
    solution: int
    difficulty: int

    @property
    def wire_size(self) -> int:
        """Bytes this solution occupies in the signature packet."""
        return len(self.key) + 4


class MessageSpecificPuzzle:
    """Create and check message-specific puzzles.

    ``difficulty`` counts trailing zero bits required of the digest; each unit
    doubles the expected forging work while leaving verification at one hash.
    """

    def __init__(self, difficulty: int = 12, key_len: int = 8):
        if not 1 <= difficulty <= 28:
            raise ConfigError(f"puzzle difficulty {difficulty} outside [1, 28]")
        self.difficulty = difficulty
        self.key_len = key_len
        self._mask = (1 << difficulty) - 1

    def _digest_tail(self, message: bytes, key: bytes, solution: int) -> int:
        digest = hashlib.sha256(
            message + key + solution.to_bytes(8, "big")
        ).digest()
        return int.from_bytes(digest[-4:], "big") & self._mask

    def solve(self, message: bytes, key: bytes) -> PuzzleSolution:
        """Search for a valid solution (sender side; base station only)."""
        solution = 0
        while self._digest_tail(message, key, solution) != 0:
            solution += 1
        return PuzzleSolution(key=key, solution=solution, difficulty=self.difficulty)

    def check(self, message: bytes, candidate: PuzzleSolution) -> bool:
        """Verify a claimed solution with a single hash (receiver side)."""
        if candidate.difficulty != self.difficulty:
            return False
        return self._digest_tail(message, candidate.key, candidate.solution) == 0

    def expected_work(self) -> int:
        """Expected number of hash evaluations an adversary needs per forgery."""
        return 1 << self.difficulty
