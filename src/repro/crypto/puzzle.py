"""Message-specific puzzles — the weak authenticator on signature packets.

Seluge (and LR-Seluge) attach a cheap-to-verify, moderately-expensive-to-forge
puzzle to the signature packet so that a flood of bogus signature packets is
filtered by one hash operation each instead of one ECDSA verification each.

We implement the hash-preimage flavour: the sender searches for a solution
``s`` such that ``H(message || key || s)`` ends in ``difficulty`` zero bits.
Verification is a single hash.  The per-image puzzle *key* is released with
the message (in the full scheme it comes from a one-way key chain; for one
dissemination session a fresh random key gives the same filtering behaviour,
which is what the simulations measure).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["MessageSpecificPuzzle", "PuzzleSolution"]


@dataclass(frozen=True)
class PuzzleSolution:
    """A solved puzzle: the released key and the found solution value."""

    key: bytes
    solution: int
    difficulty: int

    @property
    def wire_size(self) -> int:
        """Bytes this solution occupies in the signature packet."""
        return len(self.key) + 4


class MessageSpecificPuzzle:
    """Create and check message-specific puzzles.

    ``difficulty`` counts trailing zero bits required of the digest; each unit
    doubles the expected forging work while leaving verification at one hash.
    """

    def __init__(self, difficulty: int = 12, key_len: int = 8) -> None:
        if not 1 <= difficulty <= 28:
            raise ConfigError(f"puzzle difficulty {difficulty} outside [1, 28]")
        if not 1 <= key_len <= 64:
            raise ConfigError(f"puzzle key length {key_len} outside [1, 64]")
        self.difficulty = difficulty
        self.key_len = key_len
        self._mask = (1 << difficulty) - 1

    def _digest_tail(self, message: bytes, key: bytes, solution: int) -> int:
        digest = hashlib.sha256(
            message + key + solution.to_bytes(8, "big")
        ).digest()
        return int.from_bytes(digest[-4:], "big") & self._mask

    def solve(self, message: bytes, key: bytes) -> PuzzleSolution:
        """Search for a valid solution (sender side; base station only)."""
        if len(key) != self.key_len:
            raise ConfigError(
                f"puzzle key must be {self.key_len} bytes, got {len(key)}"
            )
        solution = 0
        while self._digest_tail(message, key, solution) != 0:
            solution += 1
        return PuzzleSolution(key=key, solution=solution, difficulty=self.difficulty)

    def check(self, message: bytes, candidate: PuzzleSolution) -> bool:
        """Verify a claimed solution with a single hash (receiver side).

        The candidate is attacker-controlled (it arrives in a signature
        packet), so malformed shapes — wrong types, out-of-range solution
        values, wrong key length — are *rejected*, never raised: a node
        filtering a flood of bogus packets must not crash on the first
        garbage one.
        """
        if candidate.difficulty != self.difficulty:
            return False
        if not isinstance(candidate.key, (bytes, bytearray)):
            return False
        if len(candidate.key) != self.key_len:
            return False
        solution = candidate.solution
        if isinstance(solution, bool) or not isinstance(solution, int):
            return False
        if not 0 <= solution < (1 << 64):
            return False
        return self._digest_tail(message, bytes(candidate.key), solution) == 0

    def expected_work(self) -> int:
        """Expected number of hash evaluations an adversary needs per forgery."""
        return 1 << self.difficulty
