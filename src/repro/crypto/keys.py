"""Cluster keys: HMAC-based local authentication of control packets.

Seluge and LR-Seluge authenticate advertisement and SNACK packets with a key
shared among one-hop neighbors (the *cluster key*), so an outside adversary
cannot inject control traffic.  We model it as an HMAC-SHA256 truncated MAC.
LEAP-style pairwise keys (the paper's suggested denial-of-receipt mitigation)
are modelled by deriving a per-pair key from the cluster secret.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import ConfigError

__all__ = ["ClusterKey"]


class ClusterKey:
    """Symmetric MAC facility shared by a neighborhood.

    ``mac_len`` is the truncated tag length carried on the wire (4 bytes by
    default, the common TinySec-era size).
    """

    def __init__(self, secret: bytes, mac_len: int = 4) -> None:
        if not 4 <= mac_len <= 32:
            raise ConfigError(f"mac length {mac_len} outside [4, 32]")
        if len(secret) < 8:
            raise ConfigError("cluster secret must be at least 8 bytes")
        self._secret = secret
        self.mac_len = mac_len

    def tag(self, payload: bytes) -> bytes:
        """MAC ``payload`` under the cluster key."""
        return hmac.new(self._secret, payload, hashlib.sha256).digest()[: self.mac_len]

    def check(self, payload: bytes, tag: bytes) -> bool:
        """Constant-time verification of a claimed tag."""
        return hmac.compare_digest(self.tag(payload), tag)

    def pairwise(self, node_a: int, node_b: int) -> "ClusterKey":
        """Derive a LEAP-style pairwise key for an ordered node pair.

        The derivation is symmetric in (a, b) so both endpoints agree.
        """
        lo, hi = sorted((node_a, node_b))
        derived = hmac.new(
            self._secret, f"pairwise:{lo}:{hi}".encode(), hashlib.sha256
        ).digest()
        return ClusterKey(derived, self.mac_len)
