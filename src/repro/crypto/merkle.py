"""Merkle hash tree over the encoded packets of the hash page (page 0).

The base station builds a depth-``d`` binary tree over ``n0 = 2**d`` leaves
(the encoded blocks of page 0), signs the root, and ships each block together
with its authentication path — the siblings of every node on the leaf-to-root
path — so receivers authenticate each page-0 packet in ``d`` hash operations
(Section IV-C3 / Fig. 2 of the paper).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.hashing import DEFAULT_HASH_LEN, hash_image
from repro.errors import AuthenticationError, ConfigError

__all__ = ["MerkleTree", "verify_merkle_path"]


def _is_power_of_two(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


class MerkleTree:
    """Binary Merkle tree with authentication-path extraction.

    ``levels[0]`` holds the leaf hashes ``H(block_j)``; ``levels[-1][0]`` is
    the root.  Internal nodes are ``H(left || right)``.
    """

    def __init__(self, leaves_data: Sequence[bytes], hash_len: int = DEFAULT_HASH_LEN) -> None:
        if not _is_power_of_two(len(leaves_data)):
            raise ConfigError(
                f"Merkle tree needs a power-of-two leaf count, got {len(leaves_data)}"
            )
        self.hash_len = hash_len
        self.n_leaves = len(leaves_data)
        self.levels: List[List[bytes]] = [
            [hash_image(d, hash_len) for d in leaves_data]
        ]
        while len(self.levels[-1]) > 1:
            prev = self.levels[-1]
            self.levels.append(
                [
                    hash_image(prev[i] + prev[i + 1], hash_len)
                    for i in range(0, len(prev), 2)
                ]
            )

    @property
    def root(self) -> bytes:
        """The tree root; the base station signs this value."""
        return self.levels[-1][0]

    @property
    def depth(self) -> int:
        """Number of hashes on an authentication path (``log2 n_leaves``)."""
        return len(self.levels) - 1

    def auth_path(self, index: int) -> List[bytes]:
        """Authentication path for leaf ``index``: sibling hashes, leaf→root order."""
        if not 0 <= index < self.n_leaves:
            raise ConfigError(f"leaf index {index} out of range [0, {self.n_leaves})")
        path: List[bytes] = []
        pos = index
        for level in self.levels[:-1]:
            sibling = pos ^ 1
            path.append(level[sibling])
            pos //= 2
        return path


def verify_merkle_path(
    leaf_data: bytes,
    index: int,
    path: Sequence[bytes],
    root: bytes,
    hash_len: int = DEFAULT_HASH_LEN,
) -> bool:
    """Check that ``leaf_data`` at ``index`` hashes up ``path`` to ``root``.

    This is the receiver-side page-0 packet check (Eq. 4-style verification in
    the paper): ``d`` hash operations, no signature involved.
    """
    node = hash_image(leaf_data, hash_len)
    pos = index
    for sibling in path:
        if pos & 1:
            node = hash_image(sibling + node, hash_len)
        else:
            node = hash_image(node + sibling, hash_len)
        pos //= 2
    return node == root


def require_valid_merkle_path(
    leaf_data: bytes,
    index: int,
    path: Sequence[bytes],
    root: bytes,
    hash_len: int = DEFAULT_HASH_LEN,
) -> None:
    """Raise :class:`AuthenticationError` unless the path verifies."""
    if not verify_merkle_path(leaf_data, index, path, root, hash_len):
        raise AuthenticationError(f"Merkle path for leaf {index} does not verify")
