"""Hash images: truncated SHA-256 digests.

Sensor-network protocols (Seluge, LR-Seluge) carry short *hash images* —
truncated cryptographic hashes, typically 8 bytes — inside packets, trading a
shorter digest for packet space while keeping second-preimage resistance
adequate for short-lived dissemination sessions.
"""

from __future__ import annotations

import hashlib

from repro.errors import ConfigError

__all__ = ["DEFAULT_HASH_LEN", "HashImage", "hash_image", "full_hash"]

DEFAULT_HASH_LEN = 8
_MIN_LEN = 4
_MAX_LEN = 32

HashImage = bytes
"""Type alias: a truncated digest."""


def hash_image(data: bytes, length: int = DEFAULT_HASH_LEN) -> HashImage:
    """Return the ``length``-byte truncated SHA-256 digest of ``data``.

    ``length`` must lie in [4, 32]; 8 bytes is the protocol default.
    """
    if not _MIN_LEN <= length <= _MAX_LEN:
        raise ConfigError(f"hash length {length} outside [{_MIN_LEN}, {_MAX_LEN}]")
    return hashlib.sha256(data).digest()[:length]


def full_hash(data: bytes) -> bytes:
    """Return the full 32-byte SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()
