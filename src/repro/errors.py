"""Exception hierarchy for the repro package."""

__all__ = [
    "ReproError",
    "SimulationError",
    "CodingError",
    "DecodeError",
    "AuthenticationError",
    "ConfigError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulator (past scheduling, reentrancy...)."""


class CodingError(ReproError):
    """Invalid erasure-code parameters or encode-side failure."""


class DecodeError(CodingError):
    """Decoding failed: not enough packets or inconsistent symbols."""


class AuthenticationError(ReproError):
    """A packet, signature, Merkle path, or puzzle failed verification."""


class ConfigError(ReproError):
    """Inconsistent or out-of-range configuration values."""


class ProtocolError(ReproError):
    """Protocol state-machine violation (e.g. serving a page not possessed)."""
