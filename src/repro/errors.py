"""Exception hierarchy for the repro package."""

from typing import Dict, Optional

__all__ = [
    "ReproError",
    "SimulationError",
    "SimulationRunawayError",
    "CodingError",
    "DecodeError",
    "AuthenticationError",
    "ConfigError",
    "PersistError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulator (past scheduling, reentrancy...)."""


class SimulationRunawayError(SimulationError):
    """A watchdog guard tripped: the simulation exceeded its event or time budget.

    Raised by :class:`repro.sim.engine.Simulator` when a livelocked protocol
    would otherwise run (and hang a campaign worker) forever.  The structured
    payload — events executed, simulated time, and the event-heap statistics
    at the moment the guard fired — travels with the exception so supervisors
    can record *why* a task was killed, not just that it died.
    """

    def __init__(
        self,
        message: str,
        *,
        events: int = 0,
        sim_time: float = 0.0,
        heap_stats: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(message)
        self.events = events
        self.sim_time = sim_time
        self.heap_stats: Dict[str, int] = dict(heap_stats or {})


class CodingError(ReproError):
    """Invalid erasure-code parameters or encode-side failure."""


class DecodeError(CodingError):
    """Decoding failed: not enough packets or inconsistent symbols."""


class AuthenticationError(ReproError):
    """A packet, signature, Merkle path, or puzzle failed verification."""


class ConfigError(ReproError):
    """Inconsistent or out-of-range configuration values."""


class PersistError(ReproError):
    """A durable write through :mod:`repro.persist` failed.

    Raised instead of a bare :class:`OSError` when the sanctioned persistence
    layer cannot complete a write — typically ENOSPC or EIO from the real
    filesystem, or an injected fault from the storage chaos engine.  The
    structured payload says *how far* the write got: ``partial_bytes > 0``
    on an append means a torn trailing record may now exist on disk (which
    the next append repairs), while ``partial_bytes == 0`` means the target
    file is untouched.
    """

    def __init__(
        self,
        message: str,
        *,
        path: Optional[str] = None,
        partial_bytes: Optional[int] = None,
        errno: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.partial_bytes = partial_bytes
        self.errno = errno


class ProtocolError(ReproError):
    """Protocol state-machine violation (e.g. serving a page not possessed)."""
