"""Core LR-Seluge machinery (the paper's primary contribution).

* :mod:`repro.core.config` — all protocol parameters with validation.
* :mod:`repro.core.image` — code images and page partitioning.
* :mod:`repro.core.packets` — wire-level packet records and size accounting.
* :mod:`repro.core.preprocess` — base-station pipelines: reverse-order chained
  erasure encoding, hash page, Merkle tree, signature (Section IV-C) for
  LR-Seluge, plus the Seluge and Deluge equivalents for the baselines.
* :mod:`repro.core.verify` — receiver-side immediate packet authentication
  (Section IV-E).
* :mod:`repro.core.scheduler` — tracking table + greedy round-robin TX
  scheduling (Section IV-D3).
"""

from repro.core.config import (
    DelugeParams,
    ImageConfig,
    LRSelugeParams,
    ProtocolTiming,
    SelugeParams,
    WireFormat,
)
from repro.core.image import CodeImage
from repro.core.packets import Advertisement, DataPacket, SignaturePacket, SnackRequest
from repro.core.preprocess import (
    DelugePreprocessor,
    LRSelugePreprocessor,
    PreprocessedImage,
    SelugePreprocessor,
    UnitSpec,
)
from repro.core.scheduler import GreedyRoundRobinScheduler, TrackingTable

__all__ = [
    "ImageConfig",
    "WireFormat",
    "ProtocolTiming",
    "DelugeParams",
    "SelugeParams",
    "LRSelugeParams",
    "CodeImage",
    "DataPacket",
    "SnackRequest",
    "Advertisement",
    "SignaturePacket",
    "UnitSpec",
    "PreprocessedImage",
    "DelugePreprocessor",
    "SelugePreprocessor",
    "LRSelugePreprocessor",
    "TrackingTable",
    "GreedyRoundRobinScheduler",
]
