"""Receiver-side pipelines: immediate packet authentication and page recovery.

Each node owns one pipeline instance.  The pipeline tracks everything a
sensor node stores during dissemination — the authenticated Merkle root, the
expected hash images for the next page, partially received units — and
implements the paper's Section IV-E checks:

* unit 0 (signature): puzzle check first (one hash), then one ECDSA
  verification; yields the trusted root and the signed image metadata.
* unit 1 (hash page): per-packet Merkle path verification against the root.
* units >= 2 (pages): one hash image comparison per packet against the
  expectations recovered from the previous unit.

Every packet is thus authenticated *upon arrival*; unauthenticated packets
are never buffered (the DoS-resilience property).
"""

from __future__ import annotations

import abc
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.core.config import DelugeParams, LRSelugeParams, SelugeParams
from repro.core.packets import DataPacket, SignaturePacket
from repro.core.preprocess import PreprocessedImage, unpack_metadata
from repro.crypto.ecdsa import EcdsaSignature, verify
from repro.crypto.hashing import hash_image
from repro.crypto.merkle import verify_merkle_path
from repro.crypto.puzzle import MessageSpecificPuzzle
from repro.erasure.base import make_code
from repro.errors import DecodeError, ProtocolError

__all__ = ["ReceiverPipeline", "DelugeReceiver", "SelugeReceiver", "LRSelugeReceiver"]


class ReceiverPipeline(abc.ABC):
    """Common receiver state machine over the uniform unit numbering."""

    def __init__(self) -> None:
        self.stats: Counter = Counter()
        self.total_units: Optional[int] = None
        self.image_size: Optional[int] = None
        self.version: Optional[int] = None
        self._fragments: Dict[int, bytes] = {}
        self._serving: Dict[int, List[DataPacket]] = {}

    # -- geometry -------------------------------------------------------------

    @abc.abstractmethod
    def geometry(self, unit: int) -> Tuple[int, int]:
        """``(n_packets, threshold)`` for ``unit``."""

    @property
    def secured(self) -> bool:
        return True

    # -- signature unit ---------------------------------------------------------

    def handle_signature(self, packet: SignaturePacket) -> bool:
        """Process unit 0.  Default: insecure protocols have no signature."""
        raise ProtocolError(f"{type(self).__name__} does not use signature packets")

    # -- data units -------------------------------------------------------------

    @abc.abstractmethod
    def authenticate(self, packet: DataPacket) -> bool:
        """Immediate per-packet check; False means drop without buffering."""

    @abc.abstractmethod
    def complete_unit(self, unit: int, received: Dict[int, DataPacket]) -> bool:
        """Attempt recovery of ``unit`` from authenticated packets.

        Returns True on success (internal expectations advanced); False when
        more packets are needed (e.g. a rank-deficient random-linear decode).
        """

    def serving_packets(self, unit: int) -> List[DataPacket]:
        """The unit's full packet set, for serving downstream requesters."""
        packets = self._serving.get(unit)
        if packets is None:
            raise ProtocolError(f"unit {unit} is not available for serving")
        return packets

    def validate_overheard(self, packet: DataPacket) -> bool:
        """Cheap authenticity check for packets of units we are not collecting.

        Protocol timers (request suppression, TX deferral) and sender-side
        transmission suppression must only react to *authentic* traffic —
        otherwise an adversary could silence a neighborhood with forged
        data packets.  Insecure protocols accept everything (their
        documented weakness); secure ones verify with one hash.
        """
        return True

    def assembled_image(self) -> bytes:
        """Reassemble the image once every page unit has completed."""
        if self.total_units is None or self.image_size is None:
            raise ProtocolError("image metadata not yet known")
        parts: List[bytes] = []
        for u in sorted(self._fragments):
            parts.append(self._fragments[u])
        return b"".join(parts)[: self.image_size]

    # -- base-station bootstrap ---------------------------------------------------

    def preload(self, pre: PreprocessedImage) -> None:
        """Mark every unit complete and serve from the preprocessed packets.

        Used for the base station (and for test fixtures): it originated the
        image, so it has nothing to verify or decode.
        """
        self.total_units = pre.total_units
        self.image_size = pre.image.size
        self.version = pre.image.version
        for unit in pre.units:
            if unit.kind != "signature":
                self._serving[unit.index] = list(unit.packets)


class DelugeReceiver(ReceiverPipeline):
    """No security: every packet is accepted, pages are plain reassembly."""

    def __init__(self, params: DelugeParams, version: Optional[int] = None):
        super().__init__()
        self.params = params
        self.version = version if version is not None else params.image.version

    @property
    def secured(self) -> bool:
        return False

    def geometry(self, unit: int) -> Tuple[int, int]:
        return self.params.k, self.params.k

    def learn_total_units(self, total_units: int) -> None:
        """Deluge learns the page count from advertisements."""
        if self.total_units is None:
            self.total_units = total_units
            self.image_size = self.params.image.image_size

    def authenticate(self, packet: DataPacket) -> bool:
        self.stats["accepted_unverified"] += 1
        return True

    def complete_unit(self, unit: int, received: Dict[int, DataPacket]) -> bool:
        if len(received) < self.params.k:
            return False
        ordered = [received[j] for j in range(self.params.k)]
        self._fragments[unit] = b"".join(p.payload for p in ordered)
        self._serving[unit] = ordered
        return True


class _SecureReceiver(ReceiverPipeline):
    """Shared signature/puzzle handling for Seluge and LR-Seluge."""

    def __init__(self, public_key: Tuple[int, int], puzzle: MessageSpecificPuzzle):
        super().__init__()
        self.public_key = public_key
        self.puzzle = puzzle
        self.root: Optional[bytes] = None
        self.expected: Dict[int, Dict[int, bytes]] = {}

    def handle_signature(self, packet: SignaturePacket) -> bool:
        message = packet.root + packet.metadata + packet.signature
        self.stats["puzzle_checks"] += 1
        if packet.puzzle is None or not self.puzzle.check(message, packet.puzzle):
            self.stats["puzzle_rejects"] += 1
            return False
        self.stats["signature_verifications"] += 1
        try:
            sig = EcdsaSignature.from_bytes(packet.signature)
        except Exception:
            self.stats["signature_rejects"] += 1
            return False
        if not verify(packet.root + packet.metadata, sig, self.public_key):
            self.stats["signature_rejects"] += 1
            return False
        version, total_units, image_size = unpack_metadata(packet.metadata)
        self.root = packet.root
        self.version = version
        self.total_units = total_units
        self.image_size = image_size
        return True

    def _check_merkle(self, packet: DataPacket, hash_len: int) -> bool:
        if self.root is None:
            self.stats["rejected_no_root"] += 1
            return False
        self.stats["merkle_checks"] += 1
        ok = verify_merkle_path(
            packet.canonical_bytes(), packet.index, packet.auth_path, self.root, hash_len
        )
        if not ok:
            self.stats["rejected_packets"] += 1
        return ok

    def validate_overheard(self, packet: DataPacket) -> bool:
        hash_len = self._hash_len()
        if packet.unit in self.expected:
            return self._check_chain(packet, hash_len)
        if packet.unit == 1 and self.root is not None:
            return self._check_merkle(packet, hash_len)
        serving = self._serving.get(packet.unit)
        if serving is not None and 0 <= packet.index < len(serving):
            self.stats["overheard_compare"] += 1
            return serving[packet.index].payload == packet.payload
        return False

    def _hash_len(self) -> int:
        return self.params.wire.hash_len  # both secure receivers carry params

    def _check_chain(self, packet: DataPacket, hash_len: int) -> bool:
        expectations = self.expected.get(packet.unit)
        if expectations is None:
            self.stats["rejected_no_expectation"] += 1
            return False
        expected = expectations.get(packet.index)
        if expected is None:
            self.stats["rejected_packets"] += 1
            return False
        self.stats["hash_checks"] += 1
        ok = hash_image(packet.canonical_bytes(), hash_len) == expected
        if not ok:
            self.stats["rejected_packets"] += 1
        return ok


class SelugeReceiver(_SecureReceiver):
    """Seluge: all-k pages with per-packet chained hashes."""

    def __init__(self, params: SelugeParams, public_key: Tuple[int, int],
                 puzzle: Optional[MessageSpecificPuzzle] = None):
        super().__init__(public_key, puzzle or MessageSpecificPuzzle(difficulty=10))
        self.params = params

    def geometry(self, unit: int) -> Tuple[int, int]:
        if unit == 0:
            return 1, 1
        if unit == 1:
            m0 = self.params.hash_page_packets()
            return m0, m0
        return self.params.k, self.params.k

    def authenticate(self, packet: DataPacket) -> bool:
        if packet.unit == 1:
            return self._check_merkle(packet, self.params.wire.hash_len)
        return self._check_chain(packet, self.params.wire.hash_len)

    def complete_unit(self, unit: int, received: Dict[int, DataPacket]) -> bool:
        p = self.params
        n_packets, threshold = self.geometry(unit)
        if len(received) < threshold:
            return False
        ordered = [received[j] for j in range(n_packets)]
        if unit == 1:
            m0 = b"".join(pkt.payload for pkt in ordered)
            self.expected[2] = {
                j: m0[j * p.wire.hash_len : (j + 1) * p.wire.hash_len]
                for j in range(p.k)
            }
            self._serving[unit] = ordered
            return True
        if self.total_units is None:
            raise AssertionError('invariant violated: self.total_units is not None')
        last_unit = self.total_units - 1
        if unit < last_unit:
            slice_len = p.chained_slice
            self._fragments[unit] = b"".join(pkt.payload[:slice_len] for pkt in ordered)
            self.expected[unit + 1] = {
                j: ordered[j].payload[slice_len:] for j in range(p.k)
            }
        else:
            self._fragments[unit] = b"".join(pkt.payload for pkt in ordered)
        self._serving[unit] = ordered
        return True


class LRSelugeReceiver(_SecureReceiver):
    """LR-Seluge: erasure-coded pages with page-level chained hash images."""

    def __init__(self, params: LRSelugeParams, public_key: Tuple[int, int],
                 puzzle: Optional[MessageSpecificPuzzle] = None):
        super().__init__(public_key, puzzle or MessageSpecificPuzzle(difficulty=10))
        self.params = params
        self.code = make_code(
            params.code_kind, params.k, params.n, params.resolved_kprime,
            seed=params.code_seed,
        )
        self.code0 = make_code(
            params.code_kind, params.k0, params.n0, params.k0prime,
            seed=params.code_seed + 1,
        )
        self._decoded_blocks: Dict[int, List[bytes]] = {}

    def geometry(self, unit: int) -> Tuple[int, int]:
        if unit == 0:
            return 1, 1
        if unit == 1:
            return self.params.n0, self.params.k0prime
        return self.params.n, self.params.resolved_kprime

    def authenticate(self, packet: DataPacket) -> bool:
        if packet.unit == 1:
            return self._check_merkle(packet, self.params.wire.hash_len)
        return self._check_chain(packet, self.params.wire.hash_len)

    def complete_unit(self, unit: int, received: Dict[int, DataPacket]) -> bool:
        p = self.params
        _, threshold = self.geometry(unit)
        if len(received) < threshold:
            return False
        payloads = {idx: pkt.payload for idx, pkt in received.items()}
        code = self.code0 if unit == 1 else self.code
        self.stats["decode_ops"] += 1
        try:
            blocks = code.decode(payloads)
        except DecodeError:
            self.stats["decode_failures"] += 1
            return False
        source = b"".join(blocks)
        if unit == 1:
            hash_len = p.wire.hash_len
            self.expected[2] = {
                j: source[j * hash_len : (j + 1) * hash_len] for j in range(p.n)
            }
        else:
            if self.total_units is None:
                raise AssertionError('invariant violated: self.total_units is not None')
            last_unit = self.total_units - 1
            if unit < last_unit:
                cap = p.page_capacity
                self._fragments[unit] = source[:cap]
                hash_len = p.wire.hash_len
                tail = source[cap:]
                self.expected[unit + 1] = {
                    j: tail[j * hash_len : (j + 1) * hash_len] for j in range(p.n)
                }
            else:
                self._fragments[unit] = source
        self._decoded_blocks[unit] = blocks
        return True

    def serving_packets(self, unit: int) -> List[DataPacket]:
        """Re-encode the recovered page to regenerate all n packets (Section IV-D3).

        The encoding is deterministic, so the regenerated packets are
        byte-identical to the base station's; the result is cached.
        """
        packets = self._serving.get(unit)
        if packets is not None:
            return packets
        blocks = self._decoded_blocks.get(unit)
        if blocks is None:
            raise ProtocolError(f"unit {unit} is not available for serving")
        code = self.code0 if unit == 1 else self.code
        self.stats["encode_ops"] += 1
        encoded = code.encode(blocks)
        if self.version is None:
            raise AssertionError('invariant violated: self.version is not None')
        packets = [
            DataPacket(version=self.version, unit=unit, index=j, payload=encoded[j])
            for j in range(len(encoded))
        ]
        if unit == 1:
            # Page-0 packets carry Merkle paths; a serving node must supply
            # them.  It reconstructs the tree from the regenerated packets
            # (it holds the whole page, hence the whole tree).
            from repro.crypto.merkle import MerkleTree

            tree = MerkleTree(
                [pkt.canonical_bytes() for pkt in packets], self.params.wire.hash_len
            )
            packets = [
                DataPacket(
                    version=pkt.version, unit=pkt.unit, index=pkt.index,
                    payload=pkt.payload, auth_path=tuple(tree.auth_path(pkt.index)),
                )
                for pkt in packets
            ]
        self._serving[unit] = packets
        return packets
