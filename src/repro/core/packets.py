"""Protocol wire packets.

These are the payload objects carried inside :class:`repro.net.packet.Frame`.
``DataPacket.canonical_bytes`` defines exactly what gets hashed for the
chaining relationships — the base station (preprocessing) and the receivers
(verification) must agree on it byte-for-byte.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["DataPacket", "SnackRequest", "Advertisement", "SignaturePacket"]

_CANONICAL_HEADER = struct.Struct(">HHH")  # version, unit, index


@dataclass(frozen=True)
class DataPacket:
    """One data packet of a unit (page), possibly with a Merkle auth path.

    ``unit`` uses the uniform unit numbering: for the secure protocols unit 0
    is the signature, unit 1 the hash page, units 2.. the code pages; Deluge
    numbers its pages from 0 directly.
    """

    version: int
    unit: int
    index: int
    payload: bytes
    auth_path: Tuple[bytes, ...] = ()

    def canonical_bytes(self) -> bytes:
        """The bytes whose hash image chains this packet to the previous page.

        The auth path is *excluded*: page-0 packets are authenticated through
        the Merkle tree, not through chaining.
        """
        return _CANONICAL_HEADER.pack(self.version, self.unit, self.index) + self.payload


@dataclass(frozen=True)
class SnackRequest:
    """Selective-NACK: the bit-vector of packet indices still needed.

    ``mac`` carries the cluster/pairwise authentication tag when control
    authentication is enabled (its bytes are always part of the wire size).
    """

    version: int
    unit: int
    requester: int
    server: int
    needed: Tuple[int, ...]          # sorted missing packet indices
    mac: bytes = b""

    @property
    def ones(self) -> int:
        return len(self.needed)


@dataclass(frozen=True)
class Advertisement:
    """Periodic Trickle advertisement of dissemination progress."""

    version: int
    units_complete: int
    total_units: int
    mac: bytes = b""


@dataclass(frozen=True)
class SignaturePacket:
    """The signed Merkle root plus image metadata and the weak authenticator.

    ``metadata`` is the exact byte string that was signed together with the
    root; ``puzzle`` is a :class:`repro.crypto.puzzle.PuzzleSolution`.
    """

    version: int
    root: bytes
    metadata: bytes
    signature: bytes
    puzzle: object = None

    def signed_bytes(self) -> bytes:
        return self.root + self.metadata
