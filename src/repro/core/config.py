"""Configuration objects for images, wire formats, and the three protocols.

Defaults mirror Section VI of the paper where stated (20 KiB image, pages of
``k = 32`` blocks, default erasure rate 1.5, ``N = 20`` one-hop receivers,
``p = 0.1``) and mica2-era packet dimensions elsewhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigError

__all__ = [
    "ImageConfig",
    "WireFormat",
    "ProtocolTiming",
    "DelugeParams",
    "SelugeParams",
    "LRSelugeParams",
    "next_power_of_two",
]


def next_power_of_two(x: int) -> int:
    """Smallest power of two >= x (x >= 1)."""
    if x < 1:
        raise ConfigError(f"need a positive value, got {x}")
    return 1 << (x - 1).bit_length()


@dataclass(frozen=True)
class ImageConfig:
    """The code image being disseminated."""

    image_size: int = 20 * 1024
    version: int = 2

    def __post_init__(self) -> None:
        if self.image_size < 1:
            raise ConfigError(f"image size must be positive, got {self.image_size}")


@dataclass(frozen=True)
class WireFormat:
    """On-air byte accounting shared by all protocols.

    ``data_payload`` is the number of payload bytes a data packet carries
    (image slice plus, for Seluge, the embedded chained hash; for LR-Seluge,
    one encoded block).  ``header`` covers version/page/index/addressing/CRC.
    """

    header: int = 11
    data_payload: int = 72
    hash_len: int = 8
    mac_len: int = 4
    adv_body: int = 5
    signature_len: int = 48       # ECDSA P-192 (r, s)
    puzzle_len: int = 12          # released key (8) + solution (4)
    metadata_len: int = 13        # version, total units, image size, flags

    def __post_init__(self) -> None:
        if self.data_payload <= self.hash_len:
            raise ConfigError("data payload must exceed the hash length")
        if not 4 <= self.hash_len <= 32:
            raise ConfigError(f"hash length {self.hash_len} outside [4, 32]")

    # -- frame sizes ---------------------------------------------------------

    def data_packet_size(self, payload_len: int, auth_path_hashes: int = 0) -> int:
        """Size of a data frame carrying ``payload_len`` payload bytes."""
        return self.header + payload_len + auth_path_hashes * self.hash_len

    def snack_size(self, n_packets: int) -> int:
        """SNACK frames carry an ``n_packets``-bit vector plus a MAC."""
        return self.header + self.mac_len + math.ceil(n_packets / 8)

    def adv_size(self) -> int:
        return self.header + self.adv_body + self.mac_len

    def signature_packet_size(self) -> int:
        return (
            self.header
            + self.hash_len          # Merkle root
            + self.metadata_len
            + self.signature_len
            + self.puzzle_len
        )


@dataclass(frozen=True)
class ProtocolTiming:
    """Timers driving the MAINTAIN / RX / TX machinery."""

    adv_i_min: float = 2.0            # Trickle minimum interval (s)
    adv_i_max: float = 64.0           # Trickle maximum interval (s)
    adv_redundancy: int = 1
    request_delay_max: float = 0.25   # random delay before the first SNACK
    request_timeout: float = 0.7      # patience before re-SNACK
    request_max_tries: int = 12       # SNACKs per unit before backing off
    suppression_window: float = 0.5   # overheard-SNACK suppression horizon
    suppression_cap: int = 3          # max consecutive SNACK suppressions
    data_quiet_window: float = 0.9    # hold next-page requests while earlier-page data flies
    burst_active_gap: float = 0.2     # gap that marks an in-progress burst for our own page
    data_suppression_cap: int = 50    # livelock guard on data-driven suppression
    tx_aggregation_delay: float = 0.8 # collect SNACKs before serving
    tx_gap: float = 0.01              # idle gap between served packets

    def __post_init__(self) -> None:
        if self.adv_i_min <= 0 or self.adv_i_max < self.adv_i_min:
            raise ConfigError("need 0 < adv_i_min <= adv_i_max")
        if self.request_timeout <= 0:
            raise ConfigError("request_timeout must be positive")


@dataclass(frozen=True)
class DelugeParams:
    """Deluge: pages of ``k`` packets, no security, request-all ARQ."""

    k: int = 32
    image: ImageConfig = field(default_factory=ImageConfig)
    wire: WireFormat = field(default_factory=WireFormat)
    timing: ProtocolTiming = field(default_factory=ProtocolTiming)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")

    @property
    def page_capacity(self) -> int:
        """Image bytes per page: every packet is pure image payload."""
        return self.k * self.wire.data_payload

    def num_pages(self) -> int:
        return max(1, math.ceil(self.image.image_size / self.page_capacity))


@dataclass(frozen=True)
class SelugeParams:
    """Seluge: Deluge plus hash chaining, hash page, Merkle tree, signature."""

    k: int = 32
    image: ImageConfig = field(default_factory=ImageConfig)
    wire: WireFormat = field(default_factory=WireFormat)
    timing: ProtocolTiming = field(default_factory=ProtocolTiming)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")

    @property
    def chained_slice(self) -> int:
        """Image bytes per packet on pages 1..g-1 (payload minus chained hash)."""
        return self.wire.data_payload - self.wire.hash_len

    def num_pages(self) -> int:
        """Pages needed: the last page has no chained hashes, so it is larger."""
        size = self.image.image_size
        last_cap = self.k * self.wire.data_payload
        chained_cap = self.k * self.chained_slice
        if size <= last_cap:
            return 1
        return 1 + max(1, math.ceil((size - last_cap) / chained_cap))

    def hash_page_packets(self) -> int:
        """Packets in the hash page M0, padded to a power of two for the tree."""
        m0_bytes = self.k * self.wire.hash_len
        raw = max(1, math.ceil(m0_bytes / self.wire.data_payload))
        return next_power_of_two(raw)


@dataclass(frozen=True)
class LRSelugeParams:
    """LR-Seluge: fixed-rate erasure coding with chained encoded packets.

    ``kprime`` defaults to ``k + 2`` — the paper assumes a (Tornado-style)
    code needing ``k' > k`` packets; our Reed-Solomon decoder only needs
    ``k``, so the surplus emulates that reception overhead.  Set
    ``kprime = k`` to model a true MDS deployment (ablation E-overhead).
    """

    k: int = 32
    n: int = 48
    kprime: int = 0                 # 0 -> k + default_overhead (capped at n)
    default_overhead: int = 2
    code_kind: str = "rs"
    code_seed: int = 0
    k0prime_overhead: int = 1
    n0_override: int = 0            # 0 -> derived
    image: ImageConfig = field(default_factory=ImageConfig)
    wire: WireFormat = field(default_factory=WireFormat)
    timing: ProtocolTiming = field(default_factory=ProtocolTiming)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if self.n < self.k:
            raise ConfigError(f"n ({self.n}) must be >= k ({self.k})")
        if self.n > 256:
            raise ConfigError(f"n must be <= 256 for GF(256) codes, got {self.n}")
        resolved = self.resolved_kprime
        if not self.k <= resolved <= self.n:
            raise ConfigError(
                f"k' ({resolved}) must lie in [k={self.k}, n={self.n}]"
            )
        # The chained hashes must fit inside a page with room left for image.
        if self.page_capacity < 1:
            raise ConfigError(
                f"page of k={self.k} blocks x {self.wire.data_payload} B cannot "
                f"hold {self.n} chained hashes of {self.wire.hash_len} B"
            )

    @property
    def resolved_kprime(self) -> int:
        if self.kprime:
            return self.kprime
        return min(self.n, self.k + self.default_overhead)

    @property
    def rate(self) -> float:
        return self.n / self.k

    @property
    def page_source_bytes(self) -> int:
        """Source bytes per page before encoding (k blocks)."""
        return self.k * self.wire.data_payload

    @property
    def page_capacity(self) -> int:
        """Image bytes per page on pages 1..g-1 (source minus chained hashes)."""
        return self.page_source_bytes - self.n * self.wire.hash_len

    def num_pages(self) -> int:
        """Pages needed; the last page carries no chained hashes."""
        size = self.image.image_size
        if size <= self.page_source_bytes:
            return 1
        return 1 + max(1, math.ceil((size - self.page_source_bytes) / self.page_capacity))

    # -- page 0 (hash page) geometry ------------------------------------------

    @property
    def k0(self) -> int:
        """Source blocks of page 0 (the n chained hashes of page 1's packets)."""
        m0_bytes = self.n * self.wire.hash_len
        return max(1, math.ceil(m0_bytes / self.wire.data_payload))

    @property
    def n0(self) -> int:
        """Encoded blocks of page 0 — a power of two for the Merkle tree.

        The smallest power of two that leaves at least one packet of slack
        over ``k0``: page 0 is tiny and re-served often, so excess
        redundancy there costs more than it saves.
        """
        if self.n0_override:
            if self.n0_override & (self.n0_override - 1):
                raise ConfigError(f"n0 must be a power of two, got {self.n0_override}")
            if self.n0_override < self.k0:
                raise ConfigError(f"n0 override {self.n0_override} < k0 {self.k0}")
            return self.n0_override
        return next_power_of_two(self.k0 + 1)

    @property
    def k0prime(self) -> int:
        return min(self.n0, self.k0 + self.k0prime_overhead)

    def with_rate(self, n: int) -> "LRSelugeParams":
        """A copy with a different redundancy n (used by the Fig. 6 sweep)."""
        return replace(self, n=n, kprime=0, n0_override=0)
