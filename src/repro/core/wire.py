"""Concrete wire serialization for protocol packets.

The simulator accounts for on-air bytes through
:class:`~repro.core.config.WireFormat`; this module provides the actual
encodings, so the accounting is backed by real packed structs rather than
arithmetic alone (the test suite asserts that serialized sizes match the
``WireFormat`` math).  It also makes the library usable as a codec for real
radios or packet traces.

Layout (big-endian throughout):

=============  =====================================================
frame           layout
=============  =====================================================
DATA            type(1) ver(2) unit(2) index(2) plen(2) payload
                depth(1) [auth-path hashes]
SNACK           type(1) ver(2) unit(2) requester(2) server(2)
                nbits(2) bitvector mac(len from format)
ADV             type(1) ver(2) units_complete(2) total(2) mac
SIGNATURE       type(1) ver(2) root(hash_len) metadata(meta_len)
                signature(sig_len) puzzle_key(8) puzzle_solution(4)
=============  =====================================================
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.core.config import WireFormat
from repro.core.packets import Advertisement, DataPacket, SignaturePacket, SnackRequest
from repro.crypto.puzzle import PuzzleSolution
from repro.errors import ProtocolError

__all__ = [
    "encode_data",
    "decode_data",
    "encode_snack",
    "decode_snack",
    "encode_adv",
    "decode_adv",
    "encode_signature",
    "decode_signature",
]

_TYPE_DATA = 0x01
_TYPE_SNACK = 0x02
_TYPE_ADV = 0x03
_TYPE_SIG = 0x04

_DATA_HEAD = struct.Struct(">BHHHH")
_SNACK_HEAD = struct.Struct(">BHHHHH")
_ADV_HEAD = struct.Struct(">BHHH")
_SIG_HEAD = struct.Struct(">BH")


def encode_data(packet: DataPacket, wire: WireFormat) -> bytes:
    """Serialize a data packet (auth path included for page-0 packets)."""
    head = _DATA_HEAD.pack(
        _TYPE_DATA, packet.version, packet.unit, packet.index, len(packet.payload)
    )
    path = b"".join(packet.auth_path)
    for node in packet.auth_path:
        if len(node) != wire.hash_len:
            raise ProtocolError(
                f"auth-path hash of {len(node)} bytes != hash_len {wire.hash_len}"
            )
    return head + packet.payload + bytes([len(packet.auth_path)]) + path


def decode_data(raw: bytes, wire: WireFormat) -> DataPacket:
    kind, version, unit, index, plen = _DATA_HEAD.unpack_from(raw)
    if kind != _TYPE_DATA:
        raise ProtocolError(f"not a data frame (type {kind})")
    offset = _DATA_HEAD.size
    payload = raw[offset : offset + plen]
    if len(payload) != plen:
        raise ProtocolError("truncated data frame payload")
    offset += plen
    depth = raw[offset]
    offset += 1
    path = []
    for _ in range(depth):
        node = raw[offset : offset + wire.hash_len]
        if len(node) != wire.hash_len:
            raise ProtocolError("truncated auth path")
        path.append(node)
        offset += wire.hash_len
    return DataPacket(version=version, unit=unit, index=index,
                      payload=payload, auth_path=tuple(path))


def encode_snack(request: SnackRequest, n_packets: int, wire: WireFormat) -> bytes:
    """Serialize a SNACK; the needed set becomes an ``n_packets``-bit vector."""
    bits = bytearray((n_packets + 7) // 8)
    for idx in request.needed:
        if not 0 <= idx < n_packets:
            raise ProtocolError(f"needed index {idx} outside [0, {n_packets})")
        bits[idx // 8] |= 1 << (idx % 8)
    mac = request.mac or b"\x00" * wire.mac_len
    if len(mac) != wire.mac_len:
        raise ProtocolError(f"mac of {len(mac)} bytes != mac_len {wire.mac_len}")
    head = _SNACK_HEAD.pack(_TYPE_SNACK, request.version, request.unit,
                            request.requester, request.server, n_packets)
    return head + bytes(bits) + mac


def decode_snack(raw: bytes, wire: WireFormat) -> Tuple[SnackRequest, int]:
    """Deserialize a SNACK; returns ``(request, n_packets)``."""
    kind, version, unit, requester, server, n_packets = _SNACK_HEAD.unpack_from(raw)
    if kind != _TYPE_SNACK:
        raise ProtocolError(f"not a SNACK frame (type {kind})")
    offset = _SNACK_HEAD.size
    nbytes = (n_packets + 7) // 8
    bits = raw[offset : offset + nbytes]
    if len(bits) != nbytes:
        raise ProtocolError("truncated SNACK bit-vector")
    offset += nbytes
    mac = raw[offset : offset + wire.mac_len]
    needed = tuple(
        idx for idx in range(n_packets) if bits[idx // 8] & (1 << (idx % 8))
    )
    return (
        SnackRequest(version=version, unit=unit, requester=requester,
                     server=server, needed=needed, mac=mac),
        n_packets,
    )


def encode_adv(adv: Advertisement, wire: WireFormat) -> bytes:
    mac = adv.mac or b"\x00" * wire.mac_len
    if len(mac) != wire.mac_len:
        raise ProtocolError(f"mac of {len(mac)} bytes != mac_len {wire.mac_len}")
    return _ADV_HEAD.pack(_TYPE_ADV, adv.version, adv.units_complete,
                          adv.total_units) + mac


def decode_adv(raw: bytes, wire: WireFormat) -> Advertisement:
    kind, version, units_complete, total_units = _ADV_HEAD.unpack_from(raw)
    if kind != _TYPE_ADV:
        raise ProtocolError(f"not an advertisement frame (type {kind})")
    mac = raw[_ADV_HEAD.size : _ADV_HEAD.size + wire.mac_len]
    return Advertisement(version=version, units_complete=units_complete,
                         total_units=total_units, mac=mac)


def encode_signature(packet: SignaturePacket, wire: WireFormat) -> bytes:
    if len(packet.root) != wire.hash_len:
        raise ProtocolError(f"root of {len(packet.root)} bytes != hash_len")
    if len(packet.metadata) != wire.metadata_len:
        raise ProtocolError("metadata length mismatch")
    if len(packet.signature) != wire.signature_len:
        raise ProtocolError("signature length mismatch")
    puzzle: PuzzleSolution = packet.puzzle
    if puzzle is None:
        key, solution = b"\x00" * 8, 0
    else:
        key, solution = puzzle.key, puzzle.solution
    if len(key) != 8:
        raise ProtocolError("puzzle key must be 8 bytes on the wire")
    return (
        _SIG_HEAD.pack(_TYPE_SIG, packet.version)
        + packet.root
        + packet.metadata
        + packet.signature
        + key
        + struct.pack(">I", solution)
    )


def decode_signature(raw: bytes, wire: WireFormat,
                     puzzle_difficulty: int = 10) -> SignaturePacket:
    kind, version = _SIG_HEAD.unpack_from(raw)
    if kind != _TYPE_SIG:
        raise ProtocolError(f"not a signature frame (type {kind})")
    offset = _SIG_HEAD.size
    root = raw[offset : offset + wire.hash_len]
    offset += wire.hash_len
    metadata = raw[offset : offset + wire.metadata_len]
    offset += wire.metadata_len
    signature = raw[offset : offset + wire.signature_len]
    offset += wire.signature_len
    key = raw[offset : offset + 8]
    offset += 8
    (solution,) = struct.unpack_from(">I", raw, offset)
    puzzle = PuzzleSolution(key=key, solution=solution, difficulty=puzzle_difficulty)
    return SignaturePacket(version=version, root=root, metadata=metadata,
                           signature=signature, puzzle=puzzle)
