"""Base-station preprocessing pipelines (paper Section IV-C).

The output of preprocessing is a :class:`PreprocessedImage`: an ordered list
of *units* the dissemination machinery treats uniformly.

==========  ======================  =====================================
unit index  Deluge                  Seluge / LR-Seluge
==========  ======================  =====================================
0           page 1                  signature packet (1 packet, need 1)
1           page 2                  hash page M0 (Merkle-authenticated)
2..         ...                     code pages M1..Mg
==========  ======================  =====================================

For LR-Seluge the pages are built in *reverse* order: page ``g`` is encoded
first, its ``n`` packet hashes are appended to page ``g-1``'s payload before
that page is encoded, and so on down to page 1, whose packet hashes form the
hash page M0 (Fig. 1).  Seluge chains per-packet instead (the hash of packet
``(i+1, j)`` is embedded in packet ``(i, j)``).  Deluge has no chaining.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import DelugeParams, LRSelugeParams, SelugeParams
from repro.core.image import CodeImage, partition, split_blocks
from repro.core.packets import DataPacket, SignaturePacket
from repro.crypto.ecdsa import EcdsaKeyPair, sign
from repro.crypto.hashing import hash_image
from repro.crypto.merkle import MerkleTree
from repro.crypto.puzzle import MessageSpecificPuzzle
from repro.erasure.base import make_code
from repro.errors import ConfigError

__all__ = [
    "UnitSpec",
    "PreprocessedImage",
    "DelugePreprocessor",
    "SelugePreprocessor",
    "LRSelugePreprocessor",
    "pack_metadata",
    "unpack_metadata",
]

_METADATA = struct.Struct(">HHIB")  # version, total_units, image_size, flags


def pack_metadata(version: int, total_units: int, image_size: int, pad_to: int = 13) -> bytes:
    """Serialize the signed image metadata, zero-padded to the wire length."""
    raw = _METADATA.pack(version, total_units, image_size, 0)
    if len(raw) > pad_to:
        raise ConfigError(f"metadata of {len(raw)} bytes exceeds wire budget {pad_to}")
    return raw + b"\x00" * (pad_to - len(raw))


def unpack_metadata(raw: bytes) -> Tuple[int, int, int]:
    """Return (version, total_units, image_size) from signed metadata bytes."""
    version, total_units, image_size, _flags = _METADATA.unpack(raw[: _METADATA.size])
    return version, total_units, image_size


@dataclass
class UnitSpec:
    """One dissemination unit: what exists on air and when it is decodable.

    ``n_packets`` distinct packets exist; a receiver holds the unit once it
    has ``threshold`` *distinct authenticated* packets (for Deluge/Seluge
    ``threshold == n_packets``: every packet is required).
    """

    index: int
    kind: str                      # "signature" | "hash_page" | "page"
    n_packets: int
    threshold: int
    packet_size: int               # on-air frame bytes of this unit's data packets
    packets: List[DataPacket] = field(default_factory=list)
    source_blocks: Optional[List[bytes]] = None   # pre-encoding blocks (coded units)


@dataclass
class PreprocessedImage:
    """Everything the base station produces for one code image."""

    protocol: str
    image: CodeImage
    units: List[UnitSpec]
    signature_packet: Optional[SignaturePacket] = None
    merkle_root: Optional[bytes] = None
    metadata: bytes = b""

    @property
    def total_units(self) -> int:
        return len(self.units)

    def unit(self, index: int) -> UnitSpec:
        return self.units[index]

    def data_packet_count(self) -> int:
        """Distinct data packets across all units (signature excluded)."""
        return sum(u.n_packets for u in self.units if u.kind != "signature")


# ---------------------------------------------------------------------------
# Deluge
# ---------------------------------------------------------------------------


class DelugePreprocessor:
    """Plain paging: no hashes, no signature, every packet required."""

    def __init__(self, params: DelugeParams):
        self.params = params

    def build(self, image: CodeImage) -> PreprocessedImage:
        p = self.params
        if image.size != p.image.image_size:
            raise ConfigError(
                f"image is {image.size} bytes but params expect {p.image.image_size}"
            )
        g = p.num_pages()
        slices = partition(image.data, [p.page_capacity] * g)
        units: List[UnitSpec] = []
        for i, page in enumerate(slices):
            blocks = split_blocks(page, p.wire.data_payload, p.k)
            packets = [
                DataPacket(version=image.version, unit=i, index=j, payload=blocks[j])
                for j in range(p.k)
            ]
            units.append(
                UnitSpec(
                    index=i,
                    kind="page",
                    n_packets=p.k,
                    threshold=p.k,
                    packet_size=p.wire.data_packet_size(p.wire.data_payload),
                    packets=packets,
                    source_blocks=blocks,
                )
            )
        return PreprocessedImage(protocol="deluge", image=image, units=units)


# ---------------------------------------------------------------------------
# Seluge
# ---------------------------------------------------------------------------


class SelugePreprocessor:
    """Per-packet hash chaining + Merkle-authenticated hash page + signature."""

    def __init__(self, params: SelugeParams, keypair: EcdsaKeyPair,
                 puzzle: Optional[MessageSpecificPuzzle] = None,
                 puzzle_key: bytes = b"seluge-k"):
        self.params = params
        self.keypair = keypair
        self.puzzle = puzzle or MessageSpecificPuzzle(difficulty=10)
        self.puzzle_key = puzzle_key

    def build(self, image: CodeImage) -> PreprocessedImage:
        p = self.params
        if image.size != p.image.image_size:
            raise ConfigError(
                f"image is {image.size} bytes but params expect {p.image.image_size}"
            )
        g = p.num_pages()
        caps = [p.k * p.chained_slice] * (g - 1) + [p.k * p.wire.data_payload]
        slices = partition(image.data, caps)
        total_units = g + 2  # signature + hash page + g pages

        # Build pages in reverse so each page can embed the next page's hashes.
        page_units: List[UnitSpec] = []
        next_hashes: Optional[List[bytes]] = None  # hashes of page i+1's packets
        for i in range(g - 1, -1, -1):
            unit_index = i + 2
            if next_hashes is None:  # last page: pure image payload
                blocks = split_blocks(slices[i], p.wire.data_payload, p.k)
                payloads = blocks
            else:
                blocks = split_blocks(slices[i], p.chained_slice, p.k)
                payloads = [blocks[j] + next_hashes[j] for j in range(p.k)]
            packets = [
                DataPacket(version=image.version, unit=unit_index, index=j, payload=payloads[j])
                for j in range(p.k)
            ]
            page_units.append(
                UnitSpec(
                    index=unit_index,
                    kind="page",
                    n_packets=p.k,
                    threshold=p.k,
                    packet_size=p.wire.data_packet_size(p.wire.data_payload),
                    packets=packets,
                    source_blocks=payloads,
                )
            )
            next_hashes = [
                hash_image(pkt.canonical_bytes(), p.wire.hash_len) for pkt in packets
            ]
        page_units.reverse()
        if next_hashes is None:
            raise AssertionError('invariant violated: next_hashes is not None')

        # Hash page M0: the k hash images of page 1's packets, split into
        # power-of-two many packets under a Merkle tree.
        m0_bytes = b"".join(next_hashes)
        m0_count = p.hash_page_packets()
        m0_chunks = split_blocks(m0_bytes, p.wire.data_payload, m0_count)
        m0_packets = [
            DataPacket(version=image.version, unit=1, index=j, payload=m0_chunks[j])
            for j in range(m0_count)
        ]
        tree = MerkleTree([pkt.canonical_bytes() for pkt in m0_packets], p.wire.hash_len)
        m0_packets = [
            DataPacket(
                version=pkt.version,
                unit=pkt.unit,
                index=pkt.index,
                payload=pkt.payload,
                auth_path=tuple(tree.auth_path(pkt.index)),
            )
            for pkt in m0_packets
        ]
        hash_page_unit = UnitSpec(
            index=1,
            kind="hash_page",
            n_packets=m0_count,
            threshold=m0_count,
            packet_size=p.wire.data_packet_size(p.wire.data_payload, tree.depth),
            packets=m0_packets,
        )

        signature_unit, sig_packet = _build_signature_unit(
            image, total_units, p.image.image_size, p.wire, tree.root,
            self.keypair, self.puzzle, self.puzzle_key,
        )
        units = [signature_unit, hash_page_unit] + page_units
        return PreprocessedImage(
            protocol="seluge",
            image=image,
            units=units,
            signature_packet=sig_packet,
            merkle_root=tree.root,
            metadata=sig_packet.metadata,
        )


# ---------------------------------------------------------------------------
# LR-Seluge
# ---------------------------------------------------------------------------


class LRSelugePreprocessor:
    """Fixed-rate erasure coding with page-level chained hash images (Fig. 1)."""

    def __init__(self, params: LRSelugeParams, keypair: EcdsaKeyPair,
                 puzzle: Optional[MessageSpecificPuzzle] = None,
                 puzzle_key: bytes = b"lrselk-0"):
        self.params = params
        self.keypair = keypair
        self.puzzle = puzzle or MessageSpecificPuzzle(difficulty=10)
        self.puzzle_key = puzzle_key
        self.code = make_code(
            params.code_kind, params.k, params.n, params.resolved_kprime,
            seed=params.code_seed,
        )
        self.code0 = make_code(
            params.code_kind, params.k0, params.n0, params.k0prime,
            seed=params.code_seed + 1,
        )

    def build(self, image: CodeImage) -> PreprocessedImage:
        p = self.params
        if image.size != p.image.image_size:
            raise ConfigError(
                f"image is {image.size} bytes but params expect {p.image.image_size}"
            )
        g = p.num_pages()
        caps = [p.page_capacity] * (g - 1) + [p.page_source_bytes]
        slices = partition(image.data, caps)
        total_units = g + 2

        page_units: List[UnitSpec] = []
        next_hashes: Optional[List[bytes]] = None
        for i in range(g - 1, -1, -1):
            unit_index = i + 2
            if next_hashes is None:
                source = slices[i]
            else:
                source = slices[i] + b"".join(next_hashes)
            blocks = split_blocks(source, p.wire.data_payload, p.k)
            encoded = self.code.encode(blocks)
            packets = [
                DataPacket(version=image.version, unit=unit_index, index=j, payload=encoded[j])
                for j in range(p.n)
            ]
            page_units.append(
                UnitSpec(
                    index=unit_index,
                    kind="page",
                    n_packets=p.n,
                    threshold=p.resolved_kprime,
                    packet_size=p.wire.data_packet_size(p.wire.data_payload),
                    packets=packets,
                    source_blocks=blocks,
                )
            )
            next_hashes = [
                hash_image(pkt.canonical_bytes(), p.wire.hash_len) for pkt in packets
            ]
        page_units.reverse()
        if next_hashes is None:
            raise AssertionError('invariant violated: next_hashes is not None')

        # Page 0: the n hash images of page 1's packets, erasure-coded with
        # f0 and authenticated by a Merkle tree over the encoded packets.
        m0_bytes = b"".join(next_hashes)
        m0_blocks = split_blocks(m0_bytes, p.wire.data_payload, p.k0)
        encoded0 = self.code0.encode(m0_blocks)
        m0_packets = [
            DataPacket(version=image.version, unit=1, index=j, payload=encoded0[j])
            for j in range(p.n0)
        ]
        tree = MerkleTree([pkt.canonical_bytes() for pkt in m0_packets], p.wire.hash_len)
        m0_packets = [
            DataPacket(
                version=pkt.version,
                unit=pkt.unit,
                index=pkt.index,
                payload=pkt.payload,
                auth_path=tuple(tree.auth_path(pkt.index)),
            )
            for pkt in m0_packets
        ]
        page0_unit = UnitSpec(
            index=1,
            kind="hash_page",
            n_packets=p.n0,
            threshold=p.k0prime,
            packet_size=p.wire.data_packet_size(p.wire.data_payload, tree.depth),
            packets=m0_packets,
            source_blocks=m0_blocks,
        )

        signature_unit, sig_packet = _build_signature_unit(
            image, total_units, p.image.image_size, p.wire, tree.root,
            self.keypair, self.puzzle, self.puzzle_key,
        )
        units = [signature_unit, page0_unit] + page_units
        return PreprocessedImage(
            protocol="lr-seluge",
            image=image,
            units=units,
            signature_packet=sig_packet,
            merkle_root=tree.root,
            metadata=sig_packet.metadata,
        )


def _build_signature_unit(
    image: CodeImage,
    total_units: int,
    image_size: int,
    wire,
    root: bytes,
    keypair: EcdsaKeyPair,
    puzzle: MessageSpecificPuzzle,
    puzzle_key: bytes,
) -> Tuple[UnitSpec, SignaturePacket]:
    """Sign root||metadata and wrap it as unit 0 with the weak authenticator."""
    metadata = pack_metadata(image.version, total_units, image_size, wire.metadata_len)
    signature = sign(root + metadata, keypair).to_bytes()
    solution = puzzle.solve(root + metadata + signature, puzzle_key)
    sig_packet = SignaturePacket(
        version=image.version,
        root=root,
        metadata=metadata,
        signature=signature,
        puzzle=solution,
    )
    unit = UnitSpec(
        index=0,
        kind="signature",
        n_packets=1,
        threshold=1,
        packet_size=wire.signature_packet_size(),
    )
    return unit, sig_packet
