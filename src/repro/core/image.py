"""Code images and partitioning helpers."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigError

__all__ = ["CodeImage", "partition", "split_blocks"]


@dataclass(frozen=True)
class CodeImage:
    """A versioned firmware image to disseminate."""

    data: bytes
    version: int = 1

    @property
    def size(self) -> int:
        return len(self.data)

    def digest(self) -> bytes:
        return hashlib.sha256(self.data).digest()

    @classmethod
    def synthetic(cls, size: int, version: int = 1, seed: int = 0) -> "CodeImage":
        """Deterministic pseudo-random image of ``size`` bytes.

        Stands in for a real firmware binary: incompressible, content-
        addressable, reproducible across runs.
        """
        if size < 1:
            raise ConfigError(f"image size must be positive, got {size}")
        chunks: List[bytes] = []
        counter = 0
        remaining = size
        while remaining > 0:
            block = hashlib.sha256(f"image:{seed}:{version}:{counter}".encode()).digest()
            chunks.append(block[:remaining])
            remaining -= len(block[:remaining])
            counter += 1
        return cls(data=b"".join(chunks), version=version)


def partition(data: bytes, capacities: Sequence[int]) -> List[bytes]:
    """Split ``data`` into consecutive chunks of the given capacities.

    The final chunk is zero-padded to its capacity; total capacity must be
    at least ``len(data)``.
    """
    total = sum(capacities)
    if total < len(data):
        raise ConfigError(
            f"capacities sum to {total} but the image is {len(data)} bytes"
        )
    out: List[bytes] = []
    offset = 0
    for cap in capacities:
        chunk = data[offset : offset + cap]
        if len(chunk) < cap:
            chunk = chunk + b"\x00" * (cap - len(chunk))
        out.append(chunk)
        offset += cap
    return out


def split_blocks(data: bytes, block_size: int, count: int) -> List[bytes]:
    """Split ``data`` into exactly ``count`` blocks of ``block_size`` bytes.

    ``data`` is zero-padded up to ``count * block_size``.
    """
    needed = block_size * count
    if len(data) > needed:
        raise ConfigError(
            f"data of {len(data)} bytes exceeds {count} x {block_size} blocks"
        )
    padded = data + b"\x00" * (needed - len(data))
    return [padded[i * block_size : (i + 1) * block_size] for i in range(count)]
