"""TX-state scheduling: tracking table + greedy round-robin (Section IV-D3).

A sender serving a page keeps one tracking entry per requesting neighbor:
the bit-vector of packets that neighbor still wants and its *distance* — the
number of additional packets it needs to decode the page,
``d_v = q + k' - n`` where ``q`` is the number of requested packets.  The
scheduler repeatedly transmits the packet wanted by the most neighbors
(*popularity*), breaking ties round-robin (the first candidate to the right
of the previously sent index, cyclically); after each transmission it clears
that column and decrements the distance of every neighbor that wanted the
packet, deleting entries whose distance reaches zero.  Transmission stops
when the table empties — i.e. when, as far as the sender knows, every
neighbor can decode.

Deluge/Seluge semantics (request-all, union of bit-vectors) and the rateless
always-send-fresh policy are provided for the baselines and the scheduler
ablation (DESIGN.md E10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import ProtocolError

__all__ = [
    "TrackingEntry",
    "TrackingTable",
    "GreedyRoundRobinScheduler",
    "UnionScheduler",
    "FreshPacketScheduler",
]


@dataclass
class TrackingEntry:
    """One neighbor's outstanding demand for the page being served."""

    node_id: int
    wanted: Set[int]
    distance: int

    def satisfied(self) -> bool:
        return self.distance <= 0 or not self.wanted


class TrackingTable:
    """The per-page table a TX-state node maintains (paper Table I)."""

    def __init__(self, n_packets: int, threshold: int):
        if threshold > n_packets:
            raise ProtocolError(
                f"threshold {threshold} exceeds packet count {n_packets}"
            )
        self.n = n_packets
        self.threshold = threshold
        self.entries: Dict[int, TrackingEntry] = {}

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def empty(self) -> bool:
        return not self.entries

    def update_from_snack(self, node_id: int, needed: Iterable[int]) -> None:
        """Create or refresh the entry for ``node_id``.

        ``needed`` is the set of packet indices from the SNACK bit-vector.
        The distance is ``q + threshold - n`` (at most ``threshold`` more
        packets are ever required), clamped to at least 1: a node only
        requests when it genuinely cannot decode yet, which matters for
        non-MDS codes (LT/Tornado) whose received symbols can be
        rank-deficient even at ``k'`` receptions.
        """
        wanted = {i for i in needed if 0 <= i < self.n}
        if not wanted:
            self.entries.pop(node_id, None)
            return
        q = len(wanted)
        distance = max(1, q + self.threshold - self.n)
        self.entries[node_id] = TrackingEntry(node_id, wanted, distance)

    def popularity(self, index: int) -> int:
        """Number of tracked neighbors that want packet ``index``."""
        return sum(1 for e in self.entries.values() if index in e.wanted)

    def popularity_vector(self) -> List[int]:
        counts = [0] * self.n
        for entry in self.entries.values():
            for idx in entry.wanted:
                counts[idx] += 1
        return counts

    def mark_sent(self, index: int) -> None:
        """Account for a transmission (ours or an overheard one).

        Clears column ``index``, decrements the distance of every neighbor
        that wanted it, and deletes satisfied entries.  If the packet was
        lost at some neighbor, that neighbor's next SNACK reinstates it.
        """
        done: List[int] = []
        for node_id, entry in self.entries.items():
            if index in entry.wanted:
                entry.wanted.discard(index)
                entry.distance -= 1
            if entry.satisfied():
                done.append(node_id)
        for node_id in done:
            del self.entries[node_id]

    def remove(self, node_id: int) -> None:
        self.entries.pop(node_id, None)

    def snapshot(self) -> Dict[str, object]:
        """Introspection view for the flight recorder (JSON-serialisable).

        Neighbor ids key the distance map; ``popularity`` is the full
        per-index demand vector so a trace can replay scheduler decisions.
        """
        return {
            "popularity": self.popularity_vector(),
            "distances": {
                node_id: self.entries[node_id].distance
                for node_id in sorted(self.entries)
            },
        }


class GreedyRoundRobinScheduler:
    """LR-Seluge's packet selection policy over a :class:`TrackingTable`."""

    def __init__(self, table: TrackingTable):
        self.table = table
        self._last: Optional[int] = None

    def reset_rotation(self) -> None:
        self._last = None

    def next_packet(self) -> Optional[int]:
        """Choose the next packet index to transmit, or None when done.

        Highest popularity wins; ties go to the lowest index for the first
        transmission and to the first candidate to the right of the last
        sent index (cyclically) afterwards.  The caller must follow up with
        ``table.mark_sent(index)`` once the packet is actually transmitted.
        """
        counts = self.table.popularity_vector()
        best = max(counts, default=0)
        if best == 0:
            return None
        candidates = [i for i, c in enumerate(counts) if c == best]
        if self._last is None:
            choice = candidates[0]
        else:
            n = self.table.n
            choice = min(candidates, key=lambda i: (i - self._last - 1) % n)
        self._last = choice
        return choice

    def drain(self, lossless: bool = True) -> List[int]:
        """Run the policy to completion, returning the transmission order.

        With ``lossless=True`` every transmission is assumed received (the
        paper's Table I walk-through); the table ends empty.
        """
        order: List[int] = []
        while True:
            choice = self.next_packet()
            if choice is None:
                break
            order.append(choice)
            if lossless:
                self.table.mark_sent(choice)
            if len(order) > self.table.n * (len(self.table.entries) + len(order) + 1):
                raise ProtocolError("scheduler failed to make progress")
        return order


class UnionScheduler:
    """Deluge/Seluge policy: transmit the union of requested indices.

    Packets go out in index order, cyclically continuing after the last
    transmitted index (Deluge's behaviour).  Lost packets are re-requested
    in later SNACKs, which re-adds them to the pending set.
    """

    def __init__(self, n_packets: int):
        self.n = n_packets
        self.pending: Set[int] = set()
        self._last: Optional[int] = None

    @property
    def empty(self) -> bool:
        return not self.pending

    def update_from_snack(self, needed: Iterable[int]) -> None:
        for idx in needed:
            if 0 <= idx < self.n:
                self.pending.add(idx)

    def mark_sent(self, index: int) -> None:
        self.pending.discard(index)

    def next_packet(self) -> Optional[int]:
        if not self.pending:
            return None
        if self._last is None:
            choice = min(self.pending)
        else:
            choice = min(self.pending, key=lambda i: (i - self._last - 1) % self.n)
        self._last = choice
        return choice

    def snapshot(self) -> Dict[str, object]:
        """Introspection view for the flight recorder (JSON-serialisable)."""
        return {"pending": sorted(self.pending)}


class FreshPacketScheduler:
    """Rateless policy: always transmit a never-sent-before encoded packet.

    Tracks only how many packets each requester still needs; every
    transmission is a fresh index (unbounded, as with rateless codes).
    """

    def __init__(self, start_index: int = 0):
        self.next_index = start_index
        self.deficits: Dict[int, int] = {}

    @property
    def empty(self) -> bool:
        return not self.deficits

    def update_request(self, node_id: int, deficit: int) -> None:
        if deficit <= 0:
            self.deficits.pop(node_id, None)
        else:
            self.deficits[node_id] = deficit

    def next_packet(self) -> Optional[int]:
        if not self.deficits:
            return None
        index = self.next_index
        self.next_index += 1
        return index

    def mark_sent(self, index: int) -> None:
        done = []
        for node_id in self.deficits:
            self.deficits[node_id] -= 1
            if self.deficits[node_id] <= 0:
                done.append(node_id)
        for node_id in done:
            del self.deficits[node_id]

    def snapshot(self) -> Dict[str, object]:
        """Introspection view for the flight recorder (JSON-serialisable)."""
        return {
            "next_index": self.next_index,
            "deficits": {n: self.deficits[n] for n in sorted(self.deficits)},
        }
