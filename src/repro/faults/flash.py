"""Simulated per-node persistent flash.

A real Deluge/Seluge deployment writes each completed page to external
flash; a node that browns out and reboots does not restart dissemination
from page 0 — it resumes from the last page its flash holds.  ``NodeFlash``
models exactly that store: the fault injector destroys a node's RAM state on
crash, but its ``NodeFlash`` survives untouched.

The store keeps the *authenticated packets* of every completed unit, not the
decoded page bytes, so a rebooting node can replay them through a fresh
:class:`~repro.core.verify.ReceiverPipeline` — flash contents are never
trusted blindly (a half-written or stale page fails re-verification and the
node simply resumes from the last unit that still verifies).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.packets import DataPacket, SignaturePacket

__all__ = ["NodeFlash"]


class NodeFlash:
    """Crash-surviving dissemination progress for one node."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.version: Optional[int] = None
        self.units_complete: int = 0
        self.total_units: Optional[int] = None
        self.signature: Optional[SignaturePacket] = None
        self._units: Dict[int, Dict[int, DataPacket]] = {}
        # Wear/IO accounting, for energy-style bookkeeping in experiments.
        self.writes: int = 0
        self.wipes: int = 0

    # -- writes (page-completion time) --------------------------------------

    def _begin_version(self, version: int) -> None:
        """A new image version invalidates everything stored for the old one."""
        if self.version is not None and self.version != version:
            self.wipe()
        self.version = version

    def write_signature(self, version: int, packet: SignaturePacket) -> None:
        """Persist the verified signature packet (unit 0 of secure protocols)."""
        self._begin_version(version)
        self.signature = packet
        self.writes += 1

    def write_unit(
        self,
        version: int,
        unit: int,
        packets: Dict[int, DataPacket],
        total_units: Optional[int] = None,
    ) -> None:
        """Persist the authenticated packets that completed ``unit``."""
        self._begin_version(version)
        self._units[unit] = dict(packets)
        if total_units is not None:
            self.total_units = total_units
        self.writes += 1

    def set_units_complete(self, units_complete: int) -> None:
        self.units_complete = units_complete

    # -- reads (reboot time) --------------------------------------------------

    def unit_packets(self, unit: int) -> Optional[Dict[int, DataPacket]]:
        stored = self._units.get(unit)
        return dict(stored) if stored is not None else None

    @property
    def stored_units(self) -> List[int]:
        return sorted(self._units)

    @property
    def empty(self) -> bool:
        return self.signature is None and not self._units

    # -- maintenance ----------------------------------------------------------

    def truncate_from(self, unit: int) -> None:
        """Drop ``unit`` and everything above it (failed re-verification)."""
        for u in [u for u in self._units if u >= unit]:
            del self._units[u]
        self.units_complete = min(self.units_complete, unit)

    def wipe(self) -> None:
        self.version = None
        self.units_complete = 0
        self.total_units = None
        self.signature = None
        self._units.clear()
        self.wipes += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NodeFlash(node={self.node_id}, version={self.version}, "
            f"units={self.stored_units}, sig={self.signature is not None})"
        )
