"""Replays a :class:`~repro.faults.plan.FaultPlan` against a live network.

The injector schedules one simulator event per fault event, so faults
interleave with protocol traffic in strict ``(time, insertion order)`` —
identical seed + plan reproduces an identical trace.  Node crash/reboot is
delegated to the node itself (``DisseminationNode.crash()/reboot()`` own the
RAM-loss and flash-recovery semantics); link churn, partitions, and frame
corruption act on the :class:`~repro.net.radio.Radio`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from repro.core.packets import DataPacket
from repro.errors import SimulationError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.net.packet import Frame
from repro.net.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NetworkNode

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules a fault plan's events and applies them when they fire."""

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        trace: TraceRecorder,
        nodes: Iterable["NetworkNode"],
        plan: FaultPlan,
        rngs: RngRegistry,
    ):
        self.sim = sim
        self.radio = radio
        self.trace = trace
        self.plan = plan
        self.rngs = rngs
        self._nodes: Dict[int, "NetworkNode"] = {n.node_id: n for n in nodes}
        self._partition_links: List[Tuple[int, int]] = []
        self._corrupt_until: float = float("-inf")
        self._corrupt_rate: float = 0.0
        self._corrupt_mode: str = "flip"
        self._installed = False

    def install(self) -> None:
        """Schedule every plan event; call once, before or during the run."""
        if self._installed:
            raise SimulationError("FaultInjector.install() called twice")
        self._installed = True
        if self.radio.tamper is not None:
            raise SimulationError("radio already has a tamper hook installed")
        self.radio.tamper = self._tamper
        for event in self.plan.events:
            if event.time < self.sim.now:
                raise SimulationError(
                    f"fault at t={event.time} is in the past (now={self.sim.now})"
                )
            self.sim.schedule_at(event.time, self._apply, event)

    # -- event application ----------------------------------------------------

    def _node(self, node_id: Optional[int]) -> "NetworkNode":
        node = self._nodes.get(node_id)
        if node is None:
            raise SimulationError(f"fault plan names unknown node {node_id}")
        return node

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind is FaultKind.NODE_CRASH:
            self._node(event.node).crash()
        elif kind is FaultKind.NODE_REBOOT:
            self._node(event.node).reboot()
        elif kind is FaultKind.LINK_DOWN:
            u, v = event.link
            self.radio.set_link(u, v, up=False)
            self.trace.record(self.sim.now, "fault_link_down", None, link=(u, v))
        elif kind is FaultKind.LINK_UP:
            u, v = event.link
            self.radio.set_link(u, v, up=True)
            self.trace.record(self.sim.now, "fault_link_up", None, link=(u, v))
        elif kind is FaultKind.PARTITION:
            self._partition(event.groups)
        elif kind is FaultKind.HEAL:
            self._heal()
        elif kind is FaultKind.CORRUPT:
            self._corrupt_until = max(self._corrupt_until, self.sim.now + event.duration)
            self._corrupt_rate = event.rate
            self._corrupt_mode = event.mode
            self.trace.record(self.sim.now, "fault_corrupt_window", None,
                              duration=event.duration, rate=event.rate,
                              mode=event.mode)

    def _partition(self, groups: Tuple[Tuple[int, ...], ...]) -> None:
        """Cut every directed link between nodes of different groups.

        Nodes not named in any group are unaffected; healing restores
        exactly the links this partition cut (explicit link-down events from
        the plan stay down).
        """
        group_of: Dict[int, int] = {}
        for gi, group in enumerate(groups):
            for node in group:
                group_of[node] = gi
        cut: List[Tuple[int, int]] = []
        for u, gu in group_of.items():
            for v in self.radio.topology.neighbors.get(u, ()):
                gv = group_of.get(v)
                if gv is None or gv == gu:
                    continue
                if self.radio.link_is_up(u, v):
                    self.radio.set_link(u, v, up=False)
                    cut.append((u, v))
        self._partition_links.extend(cut)
        self.trace.record(self.sim.now, "fault_partition", None,
                          groups=len(groups), links_cut=len(cut))

    def _heal(self) -> None:
        for u, v in self._partition_links:
            self.radio.set_link(u, v, up=True)
        self.trace.record(self.sim.now, "fault_heal", None,
                          links_restored=len(self._partition_links))
        self._partition_links = []

    # -- frame corruption -----------------------------------------------------

    def _tamper(self, frame: Frame, sender: int, receiver: int) -> Optional[Frame]:
        if self.sim.now >= self._corrupt_until:
            return frame
        if self.rngs.get("faults/corrupt").random() >= self._corrupt_rate:
            return frame
        payload = frame.payload
        if (
            self._corrupt_mode == "drop"
            or not isinstance(payload, DataPacket)
            or not payload.payload
        ):
            # A mangled control frame fails the link-layer CRC and vanishes;
            # only data payloads are delivered corrupted (exercising the
            # receiver pipeline's per-packet authentication).
            self.trace.count("fault_corrupt_dropped")
            return None
        if self._corrupt_mode == "truncate":
            cut = max(1, len(payload.payload) // 2)
            tampered = dataclasses.replace(payload, payload=payload.payload[:cut])
        else:  # flip
            mangled = bytearray(payload.payload)
            mangled[0] ^= 0xFF
            tampered = dataclasses.replace(payload, payload=bytes(mangled))
        self.trace.count("fault_corrupt_delivered")
        return Frame(
            kind=frame.kind,
            sender=frame.sender,
            size_bytes=frame.size_bytes,
            payload=tampered,
            dest=frame.dest,
        )
