"""Deterministic fault injection: crashes, churn, partitions, corruption.

The subsystem has four pieces:

* :mod:`repro.faults.plan` — a :class:`FaultPlan` is a declarative, sorted
  list of timed fault events (node crash/reboot, directed-link up/down,
  partition/heal, frame corruption windows).
* :mod:`repro.faults.generators` — stochastic plan builders (exponential
  MTBF/MTTR crash-reboot churn, Bernoulli link flaps) seeded through the
  :class:`~repro.sim.rng.RngRegistry`, so identical seed + parameters yield
  an identical plan.
* :mod:`repro.faults.flash` — :class:`NodeFlash`, the crash-surviving
  per-node store a rebooting node re-verifies its progress from.
* :mod:`repro.faults.injector` — :class:`FaultInjector` replays a plan
  through :meth:`Simulator.schedule_at` against a live network.
"""

from repro.faults.flash import NodeFlash
from repro.faults.generators import crash_reboot_churn, link_flap_churn
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultInjector",
    "NodeFlash",
    "crash_reboot_churn",
    "link_flap_churn",
]
