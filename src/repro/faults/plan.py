"""Declarative fault plans.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` records.  It
is pure data: building a plan performs no simulation work, so plans can be
generated, merged, serialised to JSON (the ``--fault-plan`` CLI flag), and
replayed deterministically by a :class:`~repro.faults.injector.FaultInjector`.

Event kinds and their required fields:

==============  =======================================================
``crash``       ``node`` — the node loses RAM and leaves the air
``reboot``      ``node`` — power restored; recovery re-verifies flash
``link-down``   ``link=(u, v)`` — the directed link stops delivering
``link-up``     ``link=(u, v)`` — the directed link delivers again
``partition``   ``groups`` — cut every link between different groups
``heal``        no fields — restore the links the last partition cut
``corrupt``     ``duration`` (+ ``rate``, ``mode``) — for ``duration``
                seconds each delivery is tampered with probability
                ``rate``: ``flip`` mangles a data payload byte,
                ``truncate`` cuts the payload short, ``drop`` models a
                link-layer CRC failure
==============  =======================================================

A base-station outage is just ``crash``/``reboot`` aimed at the base node.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigError

__all__ = ["FaultKind", "FaultEvent", "FaultPlan"]

CORRUPT_MODES = ("flip", "truncate", "drop")


class FaultKind(str, enum.Enum):
    NODE_CRASH = "crash"
    NODE_REBOOT = "reboot"
    LINK_DOWN = "link-down"
    LINK_UP = "link-up"
    PARTITION = "partition"
    HEAL = "heal"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault; only the fields its kind needs are set."""

    time: float
    kind: FaultKind
    node: Optional[int] = None
    link: Optional[Tuple[int, int]] = None
    groups: Optional[Tuple[Tuple[int, ...], ...]] = None
    duration: Optional[float] = None
    rate: float = 1.0
    mode: str = "flip"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError(f"fault time must be >= 0, got {self.time}")
        kind = self.kind
        if kind in (FaultKind.NODE_CRASH, FaultKind.NODE_REBOOT):
            if self.node is None:
                raise ConfigError(f"{kind.value} event needs a node id")
        elif kind in (FaultKind.LINK_DOWN, FaultKind.LINK_UP):
            if self.link is None or len(self.link) != 2:
                raise ConfigError(f"{kind.value} event needs a (sender, receiver) link")
        elif kind is FaultKind.PARTITION:
            if not self.groups or len(self.groups) < 2:
                raise ConfigError("partition event needs at least two node groups")
            flat = [n for g in self.groups for n in g]
            if len(flat) != len(set(flat)):
                raise ConfigError("partition groups must be disjoint")
        elif kind is FaultKind.CORRUPT:
            if self.duration is None or self.duration <= 0:
                raise ConfigError("corrupt event needs a positive duration")
            if not 0.0 < self.rate <= 1.0:
                raise ConfigError(f"corrupt rate {self.rate} outside (0, 1]")
            if self.mode not in CORRUPT_MODES:
                raise ConfigError(f"corrupt mode must be one of {CORRUPT_MODES}")

    def to_dict(self) -> dict:
        out: dict = {"time": self.time, "kind": self.kind.value}
        if self.node is not None:
            out["node"] = self.node
        if self.link is not None:
            out["link"] = list(self.link)
        if self.groups is not None:
            out["groups"] = [list(g) for g in self.groups]
        if self.duration is not None:
            out["duration"] = self.duration
        if self.kind is FaultKind.CORRUPT:
            out["rate"] = self.rate
            out["mode"] = self.mode
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultEvent":
        try:
            kind = FaultKind(raw["kind"])
        except (KeyError, ValueError):
            raise ConfigError(f"unknown fault kind in {raw!r}")
        if "time" not in raw:
            raise ConfigError(f"fault event missing time: {raw!r}")
        link = raw.get("link")
        groups = raw.get("groups")
        return cls(
            time=float(raw["time"]),
            kind=kind,
            node=raw.get("node"),
            link=tuple(link) if link is not None else None,
            groups=tuple(tuple(g) for g in groups) if groups is not None else None,
            duration=raw.get("duration"),
            rate=float(raw.get("rate", 1.0)),
            mode=raw.get("mode", "flip"),
        )


class FaultPlan:
    """A buildable, mergeable, JSON-round-trippable list of fault events.

    Events are replayed in ``(time, insertion order)`` order, matching the
    simulator's tie-breaking, so a plan fully determines the fault trace.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self._events: List[FaultEvent] = list(events)

    # -- building ------------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultPlan":
        self._events.append(event)
        return self

    def crash(self, time: float, node: int,
              reboot_after: Optional[float] = None) -> "FaultPlan":
        """Crash ``node``; with ``reboot_after`` also schedule its reboot."""
        self.add(FaultEvent(time, FaultKind.NODE_CRASH, node=node))
        if reboot_after is not None:
            if reboot_after <= 0:
                raise ConfigError("reboot_after must be positive")
            self.reboot(time + reboot_after, node)
        return self

    def reboot(self, time: float, node: int) -> "FaultPlan":
        return self.add(FaultEvent(time, FaultKind.NODE_REBOOT, node=node))

    def link_down(self, time: float, sender: int, receiver: int) -> "FaultPlan":
        return self.add(FaultEvent(time, FaultKind.LINK_DOWN, link=(sender, receiver)))

    def link_up(self, time: float, sender: int, receiver: int) -> "FaultPlan":
        return self.add(FaultEvent(time, FaultKind.LINK_UP, link=(sender, receiver)))

    def partition(self, time: float, *groups: Iterable[int],
                  heal_after: Optional[float] = None) -> "FaultPlan":
        """Cut every link between nodes in different groups."""
        self.add(FaultEvent(
            time, FaultKind.PARTITION,
            groups=tuple(tuple(g) for g in groups),
        ))
        if heal_after is not None:
            if heal_after <= 0:
                raise ConfigError("heal_after must be positive")
            self.heal(time + heal_after)
        return self

    def heal(self, time: float) -> "FaultPlan":
        return self.add(FaultEvent(time, FaultKind.HEAL))

    def corrupt(self, time: float, duration: float, rate: float = 1.0,
                mode: str = "flip") -> "FaultPlan":
        return self.add(FaultEvent(
            time, FaultKind.CORRUPT, duration=duration, rate=rate, mode=mode
        ))

    def merge(self, other: "FaultPlan") -> "FaultPlan":
        """A new plan holding this plan's events followed by ``other``'s."""
        return FaultPlan(self._events + other._events)

    # -- access --------------------------------------------------------------

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """All events, stably sorted by time."""
        return tuple(sorted(self._events, key=lambda e: e.time))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan({len(self._events)} events)"

    # -- serialisation -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({"events": [e.to_dict() for e in self.events]}, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"fault plan is not valid JSON: {exc}")
        events = raw.get("events") if isinstance(raw, dict) else raw
        if not isinstance(events, list):
            raise ConfigError('fault plan JSON must be {"events": [...]} or a list')
        return cls(FaultEvent.from_dict(e) for e in events)

    @classmethod
    def from_json_file(cls, path: Union[str, Path]) -> "FaultPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
