"""Stochastic fault-plan generators.

Both generators draw from dedicated named streams of the
:class:`~repro.sim.rng.RngRegistry`, one per node or link, so that

* identical root seed + parameters always produce an identical plan, and
* generating a plan never perturbs the randomness any other component
  (channel, MAC backoff, protocol jitter) consumes.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.sim.rng import RngRegistry

__all__ = ["crash_reboot_churn", "link_flap_churn"]


def crash_reboot_churn(
    rngs: RngRegistry,
    node_ids: Iterable[int],
    mtbf: float,
    mttr: float,
    horizon: float,
    stream: str = "faults/churn",
) -> FaultPlan:
    """Exponential up/down churn: crash after ~MTBF up, reboot after ~MTTR down.

    Crashes are only scheduled before ``horizon``; the matching reboot is
    always scheduled (possibly past the horizon) so every crashed node
    eventually recovers — the degradation experiments measure the penalty of
    churn, not of permanently dead nodes.  Exclude the base station from
    ``node_ids`` to keep at least one copy of every page reachable.
    """
    if mtbf <= 0 or mttr <= 0:
        raise ConfigError("mtbf and mttr must be positive")
    if horizon <= 0:
        raise ConfigError("churn horizon must be positive")
    plan = FaultPlan()
    for node in node_ids:
        rng = rngs.get(f"{stream}/{node}")
        t = rng.expovariate(1.0 / mtbf)
        while t < horizon:
            downtime = rng.expovariate(1.0 / mttr)
            plan.crash(t, node, reboot_after=max(downtime, 1e-6))
            t += downtime + rng.expovariate(1.0 / mtbf)
    return plan


def link_flap_churn(
    rngs: RngRegistry,
    links: Iterable[Tuple[int, int]],
    p_flap: float,
    down_time: float,
    check_interval: float,
    horizon: float,
    stream: str = "faults/flap",
) -> FaultPlan:
    """Bernoulli link flaps: every ``check_interval`` seconds each directed
    link independently goes down with probability ``p_flap`` for
    ``down_time`` seconds (no overlapping windows per link)."""
    if not 0.0 <= p_flap <= 1.0:
        raise ConfigError(f"flap probability {p_flap} outside [0, 1]")
    if down_time <= 0 or check_interval <= 0:
        raise ConfigError("down_time and check_interval must be positive")
    if horizon <= 0:
        raise ConfigError("flap horizon must be positive")
    plan = FaultPlan()
    if p_flap == 0.0:
        return plan
    for sender, receiver in links:
        rng = rngs.get(f"{stream}/{sender}-{receiver}")
        t = check_interval
        while t < horizon:
            if rng.random() < p_flap:
                plan.link_down(t, sender, receiver)
                plan.link_up(t + down_time, sender, receiver)
                t += down_time + check_interval
            else:
                t += check_interval
    return plan
