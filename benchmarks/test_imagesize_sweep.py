"""Image-size sweep (Section VI-C, last paragraph).

"We have simulated the impact of different image sizes in both one-hop and
multihop networks and observed similar advantages of LR-Seluge over
Seluge." — this bench regenerates the one-hop version of that claim.
"""

from conftest import FULL, emit

from repro.experiments.figures import image_size_sweep


def test_image_size_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: image_size_sweep(
            sizes_kib=(5, 10, 20, 40) if FULL else (4, 8, 16),
            p=0.2,
            receivers=20 if FULL else 8,
            seeds=(1, 2) if FULL else (1,),
        ),
        rounds=1, iterations=1,
    )
    emit(result)
    savings = [float(row[-1].rstrip("%")) for row in result.rows]
    # LR-Seluge wins at every size beyond the smallest (where page-count
    # granularity can dominate), and the advantage does not vanish with size.
    assert all(s > 0 for s in savings[1:])
    assert savings[-1] > 5.0
