"""E10: greedy round-robin tracking table vs Deluge-style union policy.

The scheduler is LR-Seluge's transport contribution; this ablation holds
everything else fixed and swaps only the TX policy.
"""

from conftest import FULL, emit

from repro.experiments.ablations import ablate_scheduler


def test_scheduler_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: ablate_scheduler(
            p=0.2,
            receivers=20 if FULL else 10,
            image_size=20 * 1024 if FULL else 8 * 1024,
            seeds=(1, 2, 3) if FULL else (1, 2),
        ),
        rounds=1, iterations=1,
    )
    emit(result)
    rows = {row[0]: row for row in result.rows}
    tracking_data = rows["tracking"][1]
    union_data = rows["union"][1]
    print(f"\ndata packets: tracking={tracking_data} union={union_data}")
    # The tracking table should send no more data than the union rule.
    assert tracking_data <= union_data * 1.05
