"""Fig. 4 (E3): the five metrics vs packet-loss rate, one hop.

Shape assertions: LR-Seluge is not better on a clean channel, wins clearly
beyond the crossover (p >~ 0.05), and both protocols' costs rise with p.
"""

from conftest import FULL, emit

from repro.experiments import figures

_LOSS = (0.001, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4) if FULL else (0.001, 0.1, 0.3)


def test_fig4_loss_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: figures.fig4(
            loss_rates=_LOSS,
            receivers=20 if FULL else 10,
            image_size=20 * 1024 if FULL else 8 * 1024,
            seeds=(1, 2, 3) if FULL else (1, 2),
        ),
        rounds=1, iterations=1,
    )
    emit(result)
    sel_bytes = result.column("seluge_total_bytes")
    lr_bytes = result.column("lr_total_bytes")
    sel_lat = result.column("seluge_latency_s")
    lr_lat = result.column("lr_latency_s")
    # Costs increase with loss for both protocols.
    assert sel_bytes[-1] > sel_bytes[0]
    assert lr_bytes[-1] > lr_bytes[0]
    # Near-zero loss: LR pays the redundancy tax (not cheaper).
    assert lr_bytes[0] >= sel_bytes[0] * 0.95
    # High loss: LR clearly cheaper and faster.
    assert lr_bytes[-1] < sel_bytes[-1]
    assert lr_lat[-1] < sel_lat[-1]
    saving = 100.0 * (1.0 - lr_bytes[-1] / sel_bytes[-1])
    print(f"\nLR-Seluge total-cost saving at p={_LOSS[-1]}: {saving:.0f}% "
          f"(paper reports up to ~44% at p=0.4)")
