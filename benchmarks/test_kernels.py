"""Micro-benchmarks of the computational kernels.

These are the operations a sensor node performs per packet/page; their cost
drives the simulator's computation-overhead accounting and any real
deployment's energy budget.
"""

import numpy as np
import pytest

from repro.core.scheduler import GreedyRoundRobinScheduler, TrackingTable
from repro.crypto.ecdsa import generate_keypair, sign, verify
from repro.crypto.hashing import hash_image
from repro.crypto.merkle import MerkleTree, verify_merkle_path
from repro.crypto.puzzle import MessageSpecificPuzzle
from repro.erasure.gf256 import GF256
from repro.erasure.rs import ReedSolomonCode


@pytest.fixture(scope="module")
def page_blocks():
    rng = np.random.default_rng(1)
    return [rng.integers(0, 256, 72, dtype=np.uint8).tobytes() for _ in range(32)]


@pytest.fixture(scope="module")
def rs_code():
    return ReedSolomonCode(32, 48, 34)


def test_rs_encode_page(benchmark, rs_code, page_blocks):
    """Encode one 32-block page into 48 packets (sender-side per serve)."""
    encoded = benchmark(rs_code.encode, page_blocks)
    assert len(encoded) == 48


def test_rs_decode_page_worst_case(benchmark, rs_code, page_blocks):
    """Decode from the all-parity subset (no systematic shortcuts)."""
    encoded = rs_code.encode(page_blocks)
    received = {i: encoded[i] for i in range(16, 48)}
    decoded = benchmark(rs_code.decode, received)
    assert decoded == page_blocks


def test_rs_decode_page_systematic(benchmark, rs_code, page_blocks):
    encoded = rs_code.encode(page_blocks)
    received = {i: encoded[i] for i in range(32)}
    decoded = benchmark(rs_code.decode, received)
    assert decoded == page_blocks


def test_gf_matmul(benchmark):
    rng = np.random.default_rng(2)
    a = rng.integers(0, 256, size=(16, 32), dtype=np.uint8)
    b = rng.integers(0, 256, size=(32, 72), dtype=np.uint8)
    out = benchmark(GF256.matmul, a, b)
    assert out.shape == (16, 72)


def test_hash_image_per_packet(benchmark):
    payload = bytes(range(83))
    digest = benchmark(hash_image, payload)
    assert len(digest) == 8


def test_merkle_build(benchmark):
    leaves = [bytes([i]) * 80 for i in range(8)]
    tree = benchmark(MerkleTree, leaves)
    assert tree.depth == 3


def test_merkle_verify_path(benchmark):
    leaves = [bytes([i]) * 80 for i in range(8)]
    tree = MerkleTree(leaves)
    path = tree.auth_path(3)
    ok = benchmark(verify_merkle_path, leaves[3], 3, path, tree.root)
    assert ok


def test_ecdsa_sign(benchmark):
    kp = generate_keypair(1)
    sig = benchmark(sign, b"root||metadata", kp)
    assert verify(b"root||metadata", sig, kp.public)


def test_ecdsa_verify(benchmark):
    kp = generate_keypair(1)
    sig = sign(b"root||metadata", kp)
    ok = benchmark(verify, b"root||metadata", sig, kp.public)
    assert ok


def test_puzzle_check(benchmark):
    puzzle = MessageSpecificPuzzle(difficulty=10)
    solution = puzzle.solve(b"sig", b"keykeyke")
    ok = benchmark(puzzle.check, b"sig", solution)
    assert ok


def test_scheduler_drain_20_requesters(benchmark):
    def run():
        table = TrackingTable(48, 34)
        for node in range(20):
            table.update_from_snack(node, set(range(node % 5, 48, 1 + node % 3)))
        return GreedyRoundRobinScheduler(table).drain()

    order = benchmark(run)
    assert order


def test_tornado_encode_page(benchmark, page_blocks):
    from repro.erasure.tornado import TornadoCode

    code = TornadoCode(32, 48, seed=1)
    encoded = benchmark(code.encode, page_blocks)
    assert len(encoded) == 48


def test_tornado_decode_page(benchmark, page_blocks):
    from repro.erasure.tornado import TornadoCode

    code = TornadoCode(32, 48, seed=1)
    encoded = code.encode(page_blocks)
    received = {i: encoded[i] for i in range(10, 48)}
    decoded = benchmark(code.decode, received)
    assert decoded == page_blocks


def test_lt_decode_page(benchmark, page_blocks):
    from repro.erasure.lt import LTCode

    code = LTCode(32, 56, seed=1)
    encoded = code.encode(page_blocks)
    received = {i: encoded[i] for i in range(56)}
    decoded = benchmark(code.decode, received)
    assert decoded == page_blocks
