"""Simulator-core throughput: the event loop with and without observability.

Three measurements back the zero-overhead-when-disabled contract and the CI
perf-smoke artifact:

* a plain one-hop dissemination (no profiler, no sink) — the baseline the
  engine's single ``profiler is None`` check must not disturb,
* the same run with the event-loop profiler and structured-event sink
  attached (the cost of *enabled* observability, for comparison),
* the ``run_perf_smoke`` entry point CI uses to write ``BENCH_sim_core.json``
  plus manifest/trace artifacts.
"""

import json

from repro.experiments.scenarios import OneHopScenario, run_one_hop
from repro.obs.events import EventLog
from repro.obs.profile import LoopProfiler
from repro.obs.report import run_perf_smoke
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder


def _scenario(full_scale: bool) -> OneHopScenario:
    if full_scale:
        return OneHopScenario(protocol="lr-seluge", loss_rate=0.1,
                              receivers=20, image_size=20 * 1024, k=32, n=48)
    return OneHopScenario(protocol="lr-seluge", loss_rate=0.1,
                          receivers=8, image_size=4 * 1024, k=8, n=12)


def test_event_loop_plain(benchmark, full_scale):
    """Baseline: instrumentation off, the hot path the contract protects."""
    scenario = _scenario(full_scale)

    def run():
        return run_one_hop(scenario)

    result = benchmark(run)
    assert result.completed


def test_event_loop_instrumented(benchmark, full_scale):
    """Profiler + structured sink attached: the cost of observability ON."""
    scenario = _scenario(full_scale)

    def run():
        sim = Simulator()
        profiler = LoopProfiler()
        sim.set_profiler(profiler)
        log = EventLog()
        trace = TraceRecorder(sink=log)
        result = run_one_hop(scenario, sim=sim, trace=trace)
        return result, profiler, log

    result, profiler, log = benchmark(run)
    assert result.completed
    assert profiler.events > 0
    assert len(log) > 0


def test_perf_smoke_artifact(tmp_path, full_scale):
    """The CI entry point end to end: bench JSON + manifest + traces."""
    bench_path = tmp_path / "BENCH_sim_core.json"
    bench, report = run_perf_smoke(
        bench_path,
        manifest_out=tmp_path / "perf.manifest.json",
        trace_out=tmp_path / "perf.trace.jsonl",
        chrome_out=tmp_path / "perf.chrome.json",
        receivers=20 if full_scale else 8,
        image_kib=20 if full_scale else 4,
    )
    assert bench["completed"]
    assert bench["events_per_s"] > 0
    written = json.loads(bench_path.read_text())
    assert written["name"] == "sim_core_perf_smoke"
    print()
    print(report)
