"""Benchmark configuration.

Every paper figure/table has a benchmark that regenerates it and prints the
series.  Default sizes are scaled down so the whole suite runs in a couple
of minutes; set ``REPRO_FULL=1`` to run the paper-size versions (20 KiB
image, 15x15 grids, 3 seeds) — expect many minutes.
"""

import os

import pytest

FULL = os.environ.get("REPRO_FULL", "") == "1"


@pytest.fixture(scope="session")
def full_scale():
    return FULL


def emit(result) -> None:
    """Print a regenerated figure/table below the benchmark output."""
    print()
    print(result.report())
