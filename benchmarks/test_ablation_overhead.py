"""Reception-overhead ablation: declared k' of k (MDS) vs k+2 vs k+6.

Our Reed-Solomon code is genuinely MDS (any k packets decode); the paper
assumes a Tornado-style code needing k' > k.  This ablation quantifies what
that assumption costs.
"""

from conftest import FULL, emit

from repro.experiments.ablations import ablate_overhead


def test_overhead_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: ablate_overhead(
            p=0.2,
            receivers=20 if FULL else 10,
            image_size=20 * 1024 if FULL else 8 * 1024,
            kprimes=(32, 34, 38),
            seeds=(1, 2) if FULL else (1,),
        ),
        rounds=1, iterations=1,
    )
    emit(result)
    by_kprime = {row[0]: row for row in result.rows}
    # More declared overhead means more required receptions: data cost is
    # non-decreasing in k' (allowing small simulation noise).
    assert by_kprime[32][1] <= by_kprime[38][1] * 1.02
