"""Table II (E6): multi-hop dissemination over the high-density mica2 grid.

Shape assertions: both protocols complete on the tight grid and LR-Seluge
wins latency; with ambient (meyer-heavy-style) losses it is at parity or
better on the byte total.
"""

from conftest import FULL, emit

from repro.experiments import tables


def test_table2_tight_grid(benchmark):
    result = benchmark.pedantic(
        lambda: tables.table2(
            image_size=20 * 1024 if FULL else 6 * 1024,
            seeds=(1, 2) if FULL else (1,),
            rows=15 if FULL else 8,
            cols=15 if FULL else 8,
        ),
        rounds=1, iterations=1,
    )
    emit(result)
    rows = {row[0]: row for row in result.rows}
    assert rows["seluge"][-1] == "yes"
    assert rows["lr-seluge"][-1] == "yes"
    sel_latency = rows["seluge"][5]
    lr_latency = rows["lr-seluge"][5]
    assert lr_latency < sel_latency * 1.05
    sel_bytes = rows["seluge"][4]
    lr_bytes = rows["lr-seluge"][4]
    assert lr_bytes < sel_bytes * 1.15
