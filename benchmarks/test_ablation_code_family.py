"""Code-family ablation: Reed-Solomon vs RLC vs LT vs Tornado inside LR-Seluge.

The paper assumes a generic k-n-k' erasure code and models its reception
overhead with k' > k.  This ablation runs the full protocol over each real
code family and reports the cost of that overhead — plus each code's
measured (not declared) overhead.
"""

from conftest import FULL, emit

from repro.core.config import ImageConfig, LRSelugeParams
from repro.core.image import CodeImage
from repro.erasure.base import make_code
from repro.experiments.figures import FigureResult
from repro.experiments.runner import CompletionTracker, run_network
from repro.net.channel import BernoulliLoss
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import star_topology
from repro.protocols.lr_seluge import build_lr_seluge_network
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

_K, _N = (32, 48) if FULL else (16, 24)
_IMAGE = 20 * 1024 if FULL else 5 * 1024
_RECEIVERS = 20 if FULL else 6


def _run(kind, seed):
    rngs = RngRegistry(seed)
    sim = Simulator()
    trace = TraceRecorder()
    topo = star_topology(_RECEIVERS)
    radio = Radio(sim, topo, BernoulliLoss(0.2), rngs, trace,
                  config=RadioConfig(collisions=False))
    params = LRSelugeParams(k=_K, n=_N, code_kind=kind,
                            image=ImageConfig(image_size=_IMAGE, version=2))
    image = CodeImage.synthetic(_IMAGE, version=2, seed=seed)
    tracker = CompletionTracker(trace)
    base, nodes, pre = build_lr_seluge_network(
        sim, radio, rngs, trace, params, image=image, on_complete=tracker)
    base.start()
    return run_network(sim, trace, tracker, nodes, f"lr-{kind}",
                       max_time=7200.0, expected_image=image.data)


def test_code_family_ablation(benchmark):
    def run_all():
        rows = []
        for kind in ("rs", "rlc", "tornado", "lt"):
            code = make_code(kind, _K, _N, seed=1)
            overhead = getattr(code, "empirical_overhead", lambda **kw: 0.0)(trials=60) \
                if hasattr(code, "empirical_overhead") else 0.0
            result = _run(kind, seed=2)
            assert result.completed and result.images_ok, kind
            rows.append([kind, code.kprime, round(overhead, 2),
                         result.data_packets, result.total_bytes,
                         round(result.latency, 1)])
        return FigureResult(
            name=f"Ablation: erasure-code family inside LR-Seluge "
                 f"(k={_K}, n={_N}, p=0.2)",
            headers=["code", "declared_kprime", "measured_overhead",
                     "data_pkts", "total_bytes", "latency_s"],
            rows=rows,
        )

    result = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(result)
    by_kind = {row[0]: row for row in result.rows}
    # The MDS code's dissemination is never more expensive than the XOR codes'.
    assert by_kind["rs"][3] <= by_kind["lt"][3]
    assert by_kind["rs"][3] <= by_kind["tornado"][3] * 1.05