"""Fig. 5 (E4): the five metrics vs number of receivers N at p = 0.1.

Shape assertions: Seluge's data cost grows clearly with N while LR-Seluge
stays much flatter, and LR-Seluge's latency does not grow with N.
"""

from conftest import FULL, emit

from repro.experiments import figures

_COUNTS = (5, 10, 15, 20, 25, 30, 35, 40) if FULL else (4, 10, 20)


def test_fig5_density_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: figures.fig5(
            receiver_counts=_COUNTS,
            p=0.1,
            image_size=20 * 1024 if FULL else 8 * 1024,
            seeds=(1, 2, 3) if FULL else (1, 2),
        ),
        rounds=1, iterations=1,
    )
    emit(result)
    sel_data = result.column("seluge_data_pkts")
    lr_data = result.column("lr_data_pkts")
    sel_growth = sel_data[-1] / sel_data[0]
    lr_growth = lr_data[-1] / lr_data[0]
    print(f"\ndata-packet growth from N={_COUNTS[0]} to N={_COUNTS[-1]}: "
          f"seluge x{sel_growth:.2f}, lr-seluge x{lr_growth:.2f}")
    # Seluge grows with N; LR-Seluge is much less sensitive.
    assert sel_growth > 1.1
    assert lr_growth < sel_growth
    # LR latency stays flat-to-decreasing with density (paper Fig. 5e).
    lr_lat = result.column("lr_latency_s")
    assert lr_lat[-1] < lr_lat[0] * 1.35
