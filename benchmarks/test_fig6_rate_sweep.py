"""Fig. 6 (E5): LR-Seluge's metrics vs the erasure-coding rate n/k (k = 32).

Shape assertions: moving from minimal redundancy to a moderate rate cuts
data and SNACK costs sharply; pushing the rate much higher brings costs
back up slowly (hash images eat page capacity, so the image needs more
pages).
"""

from conftest import FULL, emit

from repro.experiments import figures

_RATES = (34, 40, 48, 56, 64, 80) if FULL else (34, 48, 72)


def test_fig6_rate_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: figures.fig6(
            rates_n=_RATES,
            loss_rates=(0.1, 0.3) if FULL else (0.2,),
            receivers=20 if FULL else 10,
            image_size=20 * 1024 if FULL else 8 * 1024,
            seeds=(1, 2, 3) if FULL else (1, 2),
        ),
        rounds=1, iterations=1,
    )
    emit(result)
    # Within each loss rate: the minimal-redundancy point is the worst for
    # SNACKs, and a moderate rate improves on it.
    by_p = {}
    for row in result.rows:
        by_p.setdefault(row[0], []).append(row)
    for p, rows in by_p.items():
        snacks = [row[4] for row in rows]   # snack_pkts column
        data = [row[3] for row in rows]     # data_pkts column
        assert min(snacks) < snacks[0], f"redundancy should cut SNACKs at p={p}"
        assert min(data) <= data[0], f"redundancy should not raise data cost at p={p}"
