"""Energy comparison (extension): joules to reprogram the network.

The paper motivates attack resilience with energy depletion; this bench
quantifies the *protocol* energy (radio + crypto + decoding) for one full
dissemination under loss.  Notable finding: at small image sizes the single
ECDSA verification per node rivals the entire radio budget — underscoring
why Seluge-family protocols insist on exactly one signature per image —
while LR-Seluge's erasure decoding costs an order of magnitude less than
the radio energy it saves.
"""

from conftest import FULL, emit

from repro.core.image import CodeImage
from repro.experiments.energy import estimate_energy
from repro.experiments.figures import FigureResult
from repro.experiments.runner import CompletionTracker, run_network
from repro.experiments.scenarios import _BUILDERS, make_params
from repro.net.channel import BernoulliLoss
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import star_topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

_IMAGE = 20 * 1024 if FULL else 6 * 1024
_RECEIVERS = 20 if FULL else 8


def _run(protocol, p, seed=3):
    sim = Simulator()
    rngs = RngRegistry(seed)
    trace = TraceRecorder()
    topo = star_topology(_RECEIVERS)
    radio = Radio(sim, topo, BernoulliLoss(p), rngs, trace,
                  config=RadioConfig(collisions=False))
    params = make_params(protocol, image_size=_IMAGE)
    image = CodeImage.synthetic(_IMAGE, version=2, seed=seed)
    tracker = CompletionTracker(trace)
    base, nodes, pre = _BUILDERS[protocol](
        sim, radio, rngs, trace, params, image=image, on_complete=tracker)
    base.start()
    result = run_network(sim, trace, tracker, nodes, protocol,
                         max_time=7200.0, expected_image=image.data)
    pipelines = [n.pipeline for n in nodes]
    return result, estimate_energy(result, _RECEIVERS + 1, pipelines)


def test_energy_comparison(benchmark):
    def run_all():
        rows = []
        for protocol in ("seluge", "lr-seluge"):
            for p in (0.1, 0.3):
                result, report = _run(protocol, p)
                assert result.completed, (protocol, p)
                rows.append([protocol, p, round(report.tx_mj, 1),
                             round(report.rx_mj, 1), round(report.crypto_mj, 1),
                             round(report.decode_mj, 1), round(report.total_mj, 1)])
        return FigureResult(
            name=f"Network energy to disseminate {_IMAGE // 1024} KiB "
                 f"(N={_RECEIVERS})",
            headers=["protocol", "p", "tx_mj", "rx_mj", "crypto_mj",
                     "decode_mj", "total_mj"],
            rows=rows,
        )

    result = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(result)
    rows = {(row[0], row[1]): row for row in result.rows}
    for p in (0.1, 0.3):
        sel = rows[("seluge", p)]
        lr = rows[("lr-seluge", p)]
        # LR-Seluge spends less radio energy under loss, and the decode
        # energy it pays for that is smaller than the radio saving.
        assert lr[2] < sel[2]
        assert lr[6] <= sel[6] * 1.01  # totals within rounding at low p
        radio_saving = (sel[2] + sel[3]) - (lr[2] + lr[3])
        assert lr[5] < radio_saving * 3
