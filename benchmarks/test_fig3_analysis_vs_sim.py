"""Fig. 3 (E1/E2/E11): analytical vs simulated per-page data transmissions.

Checks the paper's three claims: the Seluge simulation tracks the Seluge
analysis, the ACK-based LR-Seluge analysis upper-bounds the LR simulation,
and the analytical cost jumps sharply between p = 0.3 and p = 0.4 (the
round-regime shift of Section VI-A).
"""

from conftest import FULL, emit

from repro.analysis.onehop import ack_lr_expected_tx, ack_lr_round_distribution
from repro.experiments import figures

_SIZES = dict(
    loss_rates=(0.1, 0.2, 0.3, 0.4),
    receivers=20 if FULL else 10,
    image_size=20 * 1024 if FULL else 6 * 1024,
    seeds=(1, 2, 3) if FULL else (1,),
)


def test_fig3a_loss_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: figures.fig3a(**_SIZES), rounds=1, iterations=1
    )
    emit(result)
    sel_analysis = result.column("seluge_analysis")
    sel_sim = result.column("seluge_sim")
    lr_analysis = result.column("ack_lr_analysis")
    lr_sim = result.column("lr_sim")
    # Simulated Seluge tracks the analysis within a factor.
    for a, s in zip(sel_analysis, sel_sim):
        assert 0.5 * a < s < 2.0 * a
    # ACK-based analysis upper-bounds (or closely brackets) the LR sim.
    for a, s in zip(lr_analysis, lr_sim):
        assert s < 1.25 * a
    # LR beats Seluge at every lossy point.
    for lr, sel in zip(lr_sim, sel_sim):
        assert lr < sel


def test_fig3b_receiver_sweep(benchmark):
    kwargs = dict(_SIZES)
    kwargs.pop("loss_rates")
    kwargs.pop("receivers")
    counts = (5, 10, 20, 40) if FULL else (3, 6, 12)
    result = benchmark.pedantic(
        lambda: figures.fig3b(receiver_counts=counts, p=0.2, **kwargs),
        rounds=1, iterations=1,
    )
    emit(result)
    sel = result.column("seluge_analysis")
    lr = result.column("ack_lr_analysis")
    # Seluge grows faster in N than LR (relative growth comparison).
    assert sel[-1] / sel[0] > lr[-1] / lr[0]


def test_round_regime_shift(benchmark):
    """E11: the ACK-based model's cost jumps between p=0.3 and p=0.4."""
    def run():
        return {p: ack_lr_expected_tx(1, 34, 48, 20, p, trials=200) for p in (0.2, 0.3, 0.4)}

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nACK-based per-page cost: {costs}")
    jump_34 = costs[0.4] - costs[0.3]
    jump_23 = costs[0.3] - costs[0.2]
    assert costs[0.4] > costs[0.3] > costs[0.2]
    dist3 = ack_lr_round_distribution(34, 48, 20, 0.3, trials=300)
    dist4 = ack_lr_round_distribution(34, 48, 20, 0.4, trials=300)
    mean3 = sum((i + 1) * v for i, v in enumerate(dist3))
    mean4 = sum((i + 1) * v for i, v in enumerate(dist4))
    print(f"mean rounds: p=0.3 -> {mean3:.2f}, p=0.4 -> {mean4:.2f}")
    assert mean4 >= mean3
