"""Loss-model ablation: iid vs bursty (Gilbert-Elliott) at equal mean loss.

The paper evaluates under iid app-layer losses; real channels (meyer-heavy)
are bursty.  This ablation — our extension — quantifies how temporal
correlation affects the comparison.  Finding: bursts whose length is
comparable to one serving burst can wipe out most of an LR-Seluge page
transfer at once (the fixed n - k' redundancy is exceeded, forcing
Seluge-like index-specific retransmissions), so LR's margin shrinks or can
even invert under strongly bursty losses — a practical caveat the paper's
iid model does not surface.
"""

from conftest import FULL, emit

from repro.experiments.ablations import ablate_burstiness


def test_burstiness_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: ablate_burstiness(
            receivers=12 if FULL else 6,
            image_size=20 * 1024 if FULL else 6 * 1024,
            seeds=(1, 2) if FULL else (1,),
        ),
        rounds=1, iterations=1,
    )
    emit(result)
    rows = {(row[0], row[1]): row for row in result.rows}
    labels = sorted({label for _, label in rows})
    for label in labels:
        sel = rows[("seluge", label)]
        lr = rows[("lr-seluge", label)]
        saving = 100.0 * (1.0 - lr[5] / sel[5])
        print(f"LR total-byte saving under {label}: {saving:+.0f}%")
        # Structural check: both protocols completed with positive costs.
        assert sel[5] > 0 and lr[5] > 0
    # Under iid losses at this mean, LR must keep its advantage.
    iid = [l for l in labels if l.startswith("iid")][0]
    assert rows[("lr-seluge", iid)][5] < rows[("seluge", iid)][5]
