"""Table III (E7): multi-hop dissemination over the low-density mica2 grid.

The medium grid is sparser and lossier; both protocols must still complete.
See EXPERIMENTS.md for the honest discussion of where our sparse-grid
results deviate from the paper's (single-requester serving neutralises the
erasure gain on raw data packets).
"""

from conftest import FULL, emit

from repro.experiments import tables


def test_table3_medium_grid(benchmark):
    result = benchmark.pedantic(
        lambda: tables.table3(
            image_size=20 * 1024 if FULL else 6 * 1024,
            seeds=(1, 2) if FULL else (1,),
            rows=15 if FULL else 8,
            cols=15 if FULL else 8,
        ),
        rounds=1, iterations=1,
    )
    emit(result)
    rows = {row[0]: row for row in result.rows}
    assert rows["seluge"][-1] == "yes"
    assert rows["lr-seluge"][-1] == "yes"
    # The sparse grid costs clearly more than the dense one per node served;
    # sanity: both protocols stay within a small factor of each other.
    sel_bytes, lr_bytes = rows["seluge"][4], rows["lr-seluge"][4]
    assert lr_bytes < sel_bytes * 1.4
