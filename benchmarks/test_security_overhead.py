"""E8: security properties and their cost under active attacks.

Regenerates the security comparison: dissemination under a bogus-data
flood (secure protocols reject every forgery with one hash; Deluge is
polluted) and under a signature flood (puzzle filters at one hash each,
ECDSA runs at most once per node).
"""

import pytest
from conftest import FULL

from repro.core.image import CodeImage
from repro.experiments.runner import CompletionTracker, run_network
from repro.experiments.scenarios import _BUILDERS, make_params
from repro.net.channel import NoLoss
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import star_topology
from repro.protocols.attacks import BogusDataInjector, SignatureFlooder
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

_IMAGE = 8 * 1024 if FULL else 3 * 1024
_RECEIVERS = 10 if FULL else 4


def _run_under_attack(protocol, attacker_cls, attacker_kwargs, seed=5,
                      base_delay=0.0):
    sim = Simulator()
    rngs = RngRegistry(seed)
    trace = TraceRecorder()
    topo = star_topology(_RECEIVERS + 1)
    radio = Radio(sim, topo, NoLoss(), rngs, trace,
                  config=RadioConfig(collisions=False))
    params = make_params(protocol, image_size=_IMAGE, k=8, n=12)
    image = CodeImage.synthetic(_IMAGE, version=2, seed=seed)
    tracker = CompletionTracker(trace)
    base, nodes, pre = _BUILDERS[protocol](
        sim, radio, rngs, trace, params, image=image,
        receiver_ids=list(range(1, _RECEIVERS + 1)), on_complete=tracker,
    )
    attacker = attacker_cls(_RECEIVERS + 1, sim, radio, rngs, trace,
                            **attacker_kwargs)
    attacker.start()
    if base_delay:
        sim.schedule(base_delay, base.start)
    else:
        base.start()
    result = run_network(sim, trace, tracker, nodes, protocol,
                         max_time=3600.0, expected_image=image.data)
    return result, nodes, attacker


def test_pollution_resistance_lr_seluge(benchmark):
    result, nodes, attacker = benchmark.pedantic(
        lambda: _run_under_attack("lr-seluge", BogusDataInjector, {"period": 0.2}),
        rounds=1, iterations=1,
    )
    assert result.completed and result.images_ok
    rejected = sum(
        n.pipeline.stats.get("rejected_packets", 0)
        + n.pipeline.stats.get("rejected_no_expectation", 0)
        for n in nodes
    )
    print(f"\nforged packets sent: {attacker.sent}, rejections logged: {rejected}, "
          f"image integrity preserved at all {len(nodes)} nodes")
    assert rejected > 0


def test_pollution_breaks_deluge(benchmark):
    result, nodes, attacker = benchmark.pedantic(
        lambda: _run_under_attack("deluge", BogusDataInjector,
                                  {"period": 0.05}, seed=8),
        rounds=1, iterations=1,
    )
    print(f"\nforged packets sent: {attacker.sent}; deluge completed={result.completed} "
          f"images_ok={result.images_ok}")
    assert (result.images_ok is False) or not result.completed


def test_signature_flood_cost(benchmark):
    result, nodes, attacker = benchmark.pedantic(
        lambda: _run_under_attack("lr-seluge", SignatureFlooder,
                                  {"period": 0.1}, base_delay=5.0),
        rounds=1, iterations=1,
    )
    assert result.completed and result.images_ok
    puzzle_checks = sum(n.pipeline.stats["puzzle_checks"] for n in nodes)
    ecdsa_ops = sum(n.pipeline.stats["signature_verifications"] for n in nodes)
    print(f"\nforged signatures: {attacker.sent}; puzzle checks (1 hash each): "
          f"{puzzle_checks}; ECDSA verifications: {ecdsa_ops} "
          f"(= {ecdsa_ops / len(nodes):.1f} per node)")
    assert ecdsa_ops <= 2 * len(nodes)
