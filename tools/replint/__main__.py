"""``python -m replint`` entry point."""

import sys

from replint.cli import main

if __name__ == "__main__":
    sys.exit(main())
