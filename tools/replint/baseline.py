"""Baseline file support: grandfather existing findings, block new ones.

The baseline is a checked-in JSON file.  Each entry keys on
``(path, rule, hash(stripped source line))`` with a count, so findings keep
matching when unrelated edits shift line numbers, but stop matching (and start
failing CI) when the offending line itself changes or multiplies.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from replint.finding import Finding

__all__ = ["Baseline", "baseline_key"]

_VERSION = 1


def _line_hash(source_line: str) -> str:
    return hashlib.sha256(source_line.strip().encode("utf-8")).hexdigest()[:16]


def baseline_key(finding: Finding) -> Tuple[str, str, str]:
    return (finding.path, finding.rule, _line_hash(finding.source_line))


class Baseline:
    """A multiset of grandfathered findings."""

    def __init__(self, counts: "Dict[Tuple[str, str, str], int] | None" = None):
        self._counts: Dict[Tuple[str, str, str], int] = dict(counts or {})

    # -- matching ---------------------------------------------------------------

    def consume(self, finding: Finding) -> bool:
        """True (and decrement) if the finding is covered by the baseline.

        Call once per finding: duplicate findings beyond the baselined count
        are reported as new.
        """
        key = baseline_key(finding)
        remaining = self._counts.get(key, 0)
        if remaining <= 0:
            return False
        self._counts[key] = remaining - 1
        return True

    def unconsumed(self) -> List[Tuple[str, str, str, int]]:
        """Entries no finding matched this run, as (path, rule, line_hash, count).

        After every analyzed finding has been offered to :meth:`consume`, a
        positive remaining count means the baselined violation no longer
        fires — the code was fixed (or moved) and the baseline entry is
        stale.  CI fails on these so grandfathered debt shrinks monotonically
        instead of silently shielding future regressions at the same key.
        """
        return [
            (path, rule, line_hash, count)
            for (path, rule, line_hash), count in sorted(self._counts.items())
            if count > 0
        ]

    # -- (de)serialisation ------------------------------------------------------

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            key = baseline_key(finding)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        counts: Dict[Tuple[str, str, str], int] = {}
        for entry in data.get("findings", []):
            key = (entry["path"], entry["rule"], entry["line_hash"])
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts)

    def dump(self, path: Path) -> None:
        entries: List[Dict[str, object]] = [
            {"path": p, "rule": rule, "line_hash": line_hash, "count": count}
            for (p, rule, line_hash), count in sorted(self._counts.items())
            if count > 0
        ]
        payload = {"version": _VERSION, "findings": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def __len__(self) -> int:
        return sum(count for count in self._counts.values() if count > 0)
