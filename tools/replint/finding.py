"""Core data model for replint: severities, findings, and the rule registry.

A *finding* is one violation of one rule at one source location.  Rules are
registered declaratively in :data:`RULES` so the CLI can list them, ``--select``
can subset them, and the docs stay in one place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class Severity(enum.IntEnum):
    """How much a finding matters.

    ``ERROR`` findings fail the run (exit code 1) unless suppressed or
    baselined; ``WARNING`` findings are reported but only fail under
    ``--strict``.
    """

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """Static metadata for one replint rule."""

    code: str
    name: str
    severity: Severity
    summary: str
    rationale: str
    fixable: bool = False


@dataclass
class Finding:
    """One rule violation at one location."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    severity: Severity
    source_line: str = ""  # stripped text of the offending line, for baselining
    suppressed: bool = False
    baselined: bool = False
    fixed: bool = False

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        """Render as a classic ``path:line:col: CODE [sev] message`` line."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


# The rule registry.  Order here is the order of ``--list-rules`` output and of
# DESIGN.md section 8; keep the two in sync.
RULES: Tuple[Rule, ...] = (
    Rule(
        code="REP001",
        name="global-random",
        severity=Severity.ERROR,
        summary="no module-level random / numpy.random sampling outside sim/rng.py",
        rationale=(
            "Every stochastic component must draw from an injected, seeded "
            "random.Random (or a stream derived in sim/rng.py). Calls into the "
            "process-global random module share hidden state across "
            "components, so adding one draw anywhere perturbs every seeded "
            "run and breaks byte-identical replay."
        ),
    ),
    Rule(
        code="REP002",
        name="wall-clock",
        severity=Severity.ERROR,
        summary="no wall-clock reads outside the reporting stopwatch shim",
        rationale=(
            "time.time()/datetime.now()/time.monotonic() leak host time into "
            "simulation logic, which must be a pure function of (config, "
            "seed). Wall-clock timing is allowed only in "
            "experiments/reporting.py's stopwatch() helper, the single "
            "sanctioned call site used by the CLI for progress reporting."
        ),
    ),
    Rule(
        code="REP003",
        name="unordered-iteration",
        severity=Severity.ERROR,
        summary="set iteration feeding scheduling/packet decisions needs sorted()",
        rationale=(
            "Iteration order over sets depends on object hashes, and str/bytes "
            "hashing is salted per process (PYTHONHASHSEED). Any set iterated "
            "to schedule events, emit packets, or consume RNG draws must go "
            "through sorted(...) to keep traces byte-identical across runs."
        ),
    ),
    Rule(
        code="REP004",
        name="crypto-hygiene",
        severity=Severity.ERROR,
        summary="no md5/sha1 anywhere; no random-module keys/nonces in crypto/",
        rationale=(
            "The dissemination protocol's security argument rests on "
            "collision-resistant hashing (Merkle paths, hash chains, puzzle "
            "digests). md5/sha1 are broken for those purposes, and the random "
            "module is not a CSPRNG, so crypto/ code must derive key/nonce "
            "material from hashlib.sha256+ or an explicit keychain, never "
            "from random.*."
        ),
    ),
    Rule(
        code="REP005",
        name="swallowed-exceptions",
        severity=Severity.ERROR,
        summary="no bare except: and no except-pass in protocol handlers",
        rationale=(
            "A handler that silently eats exceptions turns a protocol bug "
            "into a wedged simulated node, which the fault injector then "
            "misreads as a crash. Catch specific exceptions and at least "
            "record them."
        ),
    ),
    Rule(
        code="REP006",
        name="mutable-default",
        severity=Severity.ERROR,
        summary="no mutable default arguments",
        rationale=(
            "A list/dict/set default is created once at def time and shared "
            "by every call, so state leaks between nodes and between "
            "simulation runs in the same process. Use None and materialise "
            "inside the function."
        ),
        fixable=True,
    ),
    Rule(
        code="REP007",
        name="handler-purity",
        severity=Severity.ERROR,
        summary="event handlers must not touch module-level mutable state",
        rationale=(
            "Callbacks scheduled on the engine run in event order; if they "
            "read or write module globals, two simulations in one process "
            "(or a re-run after a partial failure) contaminate each other. "
            "Handler state belongs on the node/protocol instance."
        ),
    ),
    Rule(
        code="REP008",
        name="assert-validation",
        severity=Severity.ERROR,
        summary="no assert for runtime validation in src/ (stripped under -O)",
        rationale=(
            "python -O removes assert statements, so any invariant that "
            "guards protocol or decoding correctness silently vanishes in "
            "optimised deployments. Raise a real exception instead."
        ),
        fixable=True,
    ),
    Rule(
        code="REP009",
        name="stray-print",
        severity=Severity.WARNING,
        summary="no print() in library code (CLI shims and experiments excepted)",
        rationale=(
            "Library layers must report through return values and the trace "
            "recorder; stray prints corrupt machine-read experiment output "
            "and make million-event runs unusably chatty."
        ),
    ),
    Rule(
        code="REP010",
        name="env-dependence",
        severity=Severity.ERROR,
        summary="no os.environ / sys.argv reads outside CLI and config shims",
        rationale=(
            "Environment lookups make a run's behaviour depend on the host "
            "shell, which defeats seeded reproduction. Only the CLI entry "
            "points and core/config.py may translate environment into "
            "explicit config objects."
        ),
    ),
    Rule(
        code="REP011",
        name="unknown-metric",
        severity=Severity.ERROR,
        summary="trace.count()/record() kinds must come from the metric catalogue",
        rationale=(
            "Counter and event names are the repo's measurement vocabulary "
            "(src/repro/obs/catalog.py): reports attach units and help text "
            "by name, and manifests are diffed across runs by name. A typo'd "
            "literal silently creates an orphan counter that no table ever "
            "shows, so every literal kind passed to trace.count/record/"
            "span_begin/span_end must be declared in the catalogue first."
        ),
    ),
    Rule(
        code="REP012",
        name="unsanctioned-artifact-write",
        severity=Severity.ERROR,
        summary="no direct open(...,'w')/write_text in src/ outside repro/persist.py",
        rationale=(
            "Artifacts (manifests, checkpoints, figure exports, benchmark "
            "JSON) must be written through repro/persist.py's atomic "
            "write-temp-then-rename helpers, so a crash or SIGKILL mid-write "
            "can never leave a torn half-file that a resumed campaign or a "
            "manifest diff then misreads. A direct open-for-write bypasses "
            "that durability contract. (Exception *handling* around writes "
            "is REP005's territory; this rule only covers the write path.)"
        ),
    ),
    Rule(
        code="REP013",
        name="non-event-trace-kind",
        severity=Severity.ERROR,
        summary="trace.record()/span_begin()/span_end() kinds must be "
                "declared kind=\"event\" in the catalogue",
        rationale=(
            "Structured-event call sites and plain counters share one "
            "namespace, but only kinds declared as events in src/repro/obs/"
            "catalog.py are meant to appear in the schema-versioned trace: "
            "the invariant checker and flight-trace analyzer dispatch on "
            "event kinds, and a counter-kind name smuggled through "
            "trace.record() would produce trace entries no offline tool "
            "recognises. Counters belong in trace.count(); events must be "
            "catalogued with kind=\"event\"."
        ),
    ),
    Rule(
        code="REP014",
        name="queue-order-read",
        severity=Severity.ERROR,
        summary="same-timestamp callbacks must not read engine queue state",
        rationale=(
            "An event scheduled with zero delay (or at the current sim time) "
            "runs in the same timestamp group as its scheduler, so its "
            "position among simultaneous events is decided by the engine's "
            "tie-break — which the determinism sanitizer deliberately "
            "permutes and a future batched engine will not preserve. A "
            "handler in that position that reads the engine's queue "
            "introspection (pending_events, processed_events, heap_stats, "
            "_queue, _seq) observes tie-break order directly, making its "
            "behaviour a function of scheduling internals instead of "
            "simulated time."
        ),
    ),
    Rule(
        code="REP015",
        name="shared-class-state",
        severity=Severity.ERROR,
        summary="no mutable class attributes or defaults on node/protocol/attack classes",
        rationale=(
            "A list/dict/set assigned in a class body is one object shared "
            "by every instance: every node (or attacker) in the network "
            "reads and writes the same container, which is exactly the "
            "cross-node aliased state the sanitizer's shared-state detector "
            "hunts dynamically. Whether one node's write lands before "
            "another node's read depends on event order. Initialise mutable "
            "state per-instance in __init__."
        ),
    ),
    Rule(
        code="REP016",
        name="hot-path-unordered",
        severity=Severity.ERROR,
        summary="set iteration in hot-path modules (engine/radio/channel) needs sorted()",
        rationale=(
            "sim/engine.py, net/radio.py and net/channel.py sit under every "
            "event in every run, so an unordered set iteration there "
            "perturbs every experiment at once. Unlike REP003 (which only "
            "flags sets feeding scheduling or packet decisions), any bare "
            "set iteration in these modules is an error: on the hot path "
            "there is no cold side. Dict iteration is exempt — CPython "
            "dicts iterate in insertion order, which is deterministic for a "
            "deterministic run."
        ),
    ),
    Rule(
        code="REP017",
        name="hot-path-allocation",
        severity=Severity.WARNING,
        summary="avoid slot-less dataclasses and per-event comprehension churn on hot paths",
        rationale=(
            "The engine and radio execute per event; a dataclass without "
            "__slots__ there costs a dict per instance, and a comprehension "
            "or list()/set()/dict() materialisation inside a loop allocates "
            "per iteration of the innermost loop the simulation has. These "
            "are warnings, not errors: measure first (the perf-smoke gate), "
            "but the pattern is worth a look every time it appears in "
            "sim/engine.py, net/radio.py or net/channel.py."
        ),
    ),
    Rule(
        code="REP018",
        name="unsanctioned-profiling",
        severity=Severity.ERROR,
        summary="no tracemalloc or from-imported clock calls outside the profiler stack",
        rationale=(
            "Profiling instrumentation must stay behind the sanctioned "
            "hooks in src/repro/obs/profile.py and src/repro/obs/perf.py. "
            "tracemalloc tracing is process-global — one stray start()/"
            "stop() corrupts every allocation measurement in flight — and "
            "a from-imported perf_counter() is the same wall-clock leak "
            "REP002 bans, in a spelling its dotted-name matching cannot "
            "see. Route timing through reporting.stopwatch() and "
            "allocation attribution through LoopProfiler(alloc=True)."
        ),
    ),
    Rule(
        code="REP019",
        name="unsanctioned-fs-syscall",
        severity=Severity.ERROR,
        summary="fs-mutating os calls in src/ must go through the repro.persist seam",
        rationale=(
            "Everything the harness persists — checkpoint journals, bench "
            "history, telemetry snapshots — claims crash-safety, and that "
            "claim is only as good as the chaos engine's coverage. The "
            "crash-point explorer interposes on repro.persist.FileSystem; "
            "an os.write()/os.replace()/open-for-write call made directly "
            "is invisible to it, so no simulated kill ever lands there and "
            "its recovery path ships unproven. Route writes through "
            "atomic_write_*/atomic_append_jsonl, or current_fs() when raw "
            "fd access is genuinely needed."
        ),
    ),
)

RULES_BY_CODE = {rule.code: rule for rule in RULES}

# Extra pseudo-rule for files replint cannot parse at all.
PARSE_ERROR_RULE = Rule(
    code="REP000",
    name="parse-error",
    severity=Severity.ERROR,
    summary="file could not be parsed as Python",
    rationale="replint needs a syntactically valid module to analyse.",
)


def make_finding(
    rule: Rule,
    path: str,
    line: int,
    col: int,
    message: str,
    source_line: str = "",
    severity: "Severity | None" = None,
) -> Finding:
    """Construct a finding, defaulting severity from the rule."""
    return Finding(
        rule=rule.code,
        path=path,
        line=line,
        col=col,
        message=message,
        severity=rule.severity if severity is None else severity,
        source_line=source_line,
    )
