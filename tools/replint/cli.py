"""Command-line interface: ``python -m replint [paths...]``.

Exit codes: 0 clean (or warnings only), 1 unsuppressed error findings
(warnings too under ``--strict``), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Set

from replint.baseline import Baseline
from replint.finding import RULES, RULES_BY_CODE, Severity
from replint.runner import AnalysisResult, analyze_paths

__all__ = ["main"]

DEFAULT_BASELINE = ".replint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m replint",
        description=(
            "Simulation-safety static analysis: determinism, crypto hygiene, "
            "and event-loop purity invariants for this repository."
        ),
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests", "tools"],
                        help="files or directories to check (default: src tests tools)")
    parser.add_argument("--root", default=".", metavar="DIR",
                        help="repository root used for relative paths and scopes")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run (default: all)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help=f"baseline file (default: <root>/{DEFAULT_BASELINE} "
                             "when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file and exit 0")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical fixes (REP006, REP008) in place")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as errors for the exit code")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format")
    parser.add_argument("--statistics", action="store_true",
                        help="print per-rule finding counts")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    return parser


def _parse_select(raw: "Optional[str]") -> "Optional[Set[str]]":
    if raw is None:
        return None
    codes = {code.strip().upper() for code in raw.split(",") if code.strip()}
    unknown = codes - set(RULES_BY_CODE)
    if unknown:
        raise SystemExit(
            f"error: unknown rule code(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(r.code for r in RULES)})"
        )
    return codes


def _list_rules() -> None:
    for rule in RULES:
        fixable = " (fixable)" if rule.fixable else ""
        print(f"{rule.code} {rule.name} [{rule.severity}]{fixable}")
        print(f"    {rule.summary}")


def _print_text(result: AnalysisResult, statistics: bool) -> None:
    for finding in result.active:
        print(finding.format())
    suppressed = sum(1 for f in result.findings if f.suppressed)
    baselined = sum(1 for f in result.findings if f.baselined)
    tail = (
        f"{len(result.active)} finding(s) in {result.files_checked} file(s)"
    )
    extras: List[str] = []
    if suppressed:
        extras.append(f"{suppressed} suppressed")
    if baselined:
        extras.append(f"{baselined} baselined")
    if result.fixes_applied:
        extras.append(
            f"{result.fixes_applied} fix(es) applied in "
            f"{result.files_fixed} file(s)"
        )
    if extras:
        tail += " (" + ", ".join(extras) + ")"
    print(tail)
    if statistics and result.active:
        for rule, count in result.counts_by_rule().items():
            print(f"  {rule}: {count}")


def _print_json(result: AnalysisResult) -> None:
    payload = {
        "files_checked": result.files_checked,
        "fixes_applied": result.fixes_applied,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "severity": str(f.severity),
                "message": f.message,
            }
            for f in result.active
        ],
    }
    print(json.dumps(payload, indent=2))


def main(argv: "Optional[List[str]]" = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules()
        return 0

    root = Path(args.root)
    if not root.is_dir():
        parser.error(f"--root {args.root} is not a directory")
    select = _parse_select(args.select)

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    baseline: Optional[Baseline] = None
    if args.write_baseline or args.no_baseline:
        baseline = None
    elif baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(missing)}")

    result = analyze_paths(
        paths, root=root, baseline=baseline, select=select, fix=args.fix,
    )

    if args.write_baseline:
        Baseline.from_findings(
            f for f in result.findings if not f.suppressed
        ).dump(baseline_path)
        print(
            f"wrote {baseline_path} with "
            f"{sum(1 for f in result.findings if not f.suppressed)} finding(s)"
        )
        return 0

    if args.format == "json":
        _print_json(result)
    else:
        _print_text(result, statistics=args.statistics)

    stale = _stale_entries(baseline, select, paths, root)
    for path, rule, line_hash, count in stale:
        suffix = f" x{count}" if count > 1 else ""
        print(
            f"stale baseline entry: {path}: {rule} ({line_hash}){suffix} "
            "no longer fires — refresh with --write-baseline",
            file=sys.stderr,
        )

    threshold = Severity.WARNING if args.strict else Severity.ERROR
    failing = [f for f in result.active if f.severity >= threshold]
    return 1 if failing or stale else 0


def _stale_entries(
    baseline: "Optional[Baseline]",
    select: "Optional[Set[str]]",
    paths: List[Path],
    root: Path,
) -> List:
    """Baseline entries the run never matched (drift check).

    Only meaningful for full-rule runs over paths that cover the entry:
    a ``--select`` subset or a partial path list legitimately leaves other
    entries unconsumed, so those are excluded rather than reported.
    """
    if baseline is None or select is not None:
        return []
    prefixes: List[str] = []
    for p in paths:
        try:
            rel = p.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = p.as_posix()
        prefixes.append(rel)

    def covered(entry_path: str) -> bool:
        return any(
            entry_path == pre or entry_path.startswith(pre.rstrip("/") + "/")
            for pre in prefixes
        )

    return [e for e in baseline.unconsumed() if covered(e[0])]
