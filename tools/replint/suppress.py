"""Per-line suppression comments.

A finding on line *L* is suppressed when line *L* carries a comment of the
form::

    ... # replint: disable=REP001
    ... # replint: disable=REP001,REP003
    ... # replint: disable

The bare form silences every rule on that line (use sparingly; reviewers see
exactly what is being waived either way).  Comments are discovered with the
:mod:`tokenize` module so strings containing the magic text do not count.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Optional

__all__ = ["SuppressionMap", "collect_suppressions"]

_DIRECTIVE = re.compile(r"#\s*replint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+))?")

# Sentinel meaning "every rule".
ALL_RULES: FrozenSet[str] = frozenset({"*"})


class SuppressionMap:
    """Maps line numbers to the set of rule codes disabled there."""

    def __init__(self, by_line: "Optional[Dict[int, FrozenSet[str]]]" = None):
        self._by_line: Dict[int, FrozenSet[str]] = by_line if by_line is not None else {}

    def is_suppressed(self, line: int, rule: str) -> bool:
        codes = self._by_line.get(line)
        if codes is None:
            return False
        return codes is ALL_RULES or "*" in codes or rule in codes

    def __len__(self) -> int:
        return len(self._by_line)


def collect_suppressions(source: str) -> SuppressionMap:
    """Scan ``source`` for replint disable comments."""
    by_line: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(tok.string)
            if not match:
                continue
            raw = match.group("codes")
            if raw is None:
                by_line[tok.start[0]] = ALL_RULES
            else:
                codes = frozenset(
                    code.strip() for code in raw.split(",") if code.strip()
                )
                existing = by_line.get(tok.start[0], frozenset())
                by_line[tok.start[0]] = existing | codes
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # An unparseable file surfaces as REP000 elsewhere; no suppressions.
        return SuppressionMap()
    return SuppressionMap(by_line)
