"""replint — simulation-safety static analysis for the LR-Seluge repo.

An AST-based linter enforcing the invariants the reproduction's claims rest
on: seeded determinism (no global RNG, no wall clock, no hash-order
iteration at decision points), crypto hygiene (no weak hashes, no
non-cryptographic randomness for key material), and event-loop purity
(handlers keep their state on the instance).  See DESIGN.md section 8 for
the rule catalogue and rationale.

Usage::

    PYTHONPATH=tools python -m replint src tests
    PYTHONPATH=tools python -m replint --list-rules
    PYTHONPATH=tools python -m replint --fix src
    PYTHONPATH=tools python -m replint --write-baseline src tests
"""

from replint.baseline import Baseline
from replint.cli import main
from replint.finding import Finding, RULES, RULES_BY_CODE, Rule, Severity
from replint.runner import AnalysisResult, analyze_paths, analyze_source

__version__ = "1.0.0"

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Finding",
    "RULES",
    "RULES_BY_CODE",
    "Rule",
    "Severity",
    "analyze_paths",
    "analyze_source",
    "main",
    "__version__",
]
