"""File discovery and per-file analysis orchestration."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Set

from replint.baseline import Baseline
from replint.finding import Finding, PARSE_ERROR_RULE, make_finding
from replint.fixes import fix_source
from replint.rules import FileContext, MetricVocabulary, load_vocabulary, run_rules
from replint.suppress import collect_suppressions

__all__ = ["AnalysisResult", "analyze_source", "analyze_paths", "iter_python_files"]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "build", "dist",
              ".mypy_cache", ".pytest_cache", "node_modules"}

FIXABLE_RULES = {"REP006", "REP008"}


@dataclass
class AnalysisResult:
    """Findings for one run, already tagged with suppression/baseline state."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    files_fixed: int = 0
    fixes_applied: int = 0

    @property
    def active(self) -> List[Finding]:
        """Findings that were neither suppressed nor baselined nor fixed."""
        return [
            f for f in self.findings
            if not (f.suppressed or f.baselined or f.fixed)
        ]

    def counts_by_rule(self) -> "dict[str, int]":
        counts: dict = {}
        for finding in self.active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    found: Set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                found.add(path)
        elif path.is_dir():
            for child in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in child.parts):
                    found.add(child)
    return sorted(found)


def analyze_source(
    source: str,
    relpath: str,
    select: "Optional[Set[str]]" = None,
    vocabulary: "Optional[MetricVocabulary]" = None,
) -> List[Finding]:
    """Analyze one module's source text; suppressions applied, no baseline.

    ``vocabulary`` feeds REP011 (unknown-metric); without one the rule is
    inert, so callers analysing loose snippets are unaffected.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [make_finding(
            PARSE_ERROR_RULE, relpath, exc.lineno or 1, (exc.offset or 1) - 1,
            f"could not parse: {exc.msg}",
        )]
    ctx = FileContext(path=relpath, lines=source.splitlines(),
                      vocabulary=vocabulary)
    findings = run_rules(tree, ctx, select=select)
    suppressions = collect_suppressions(source)
    for finding in findings:
        if suppressions.is_suppressed(finding.line, finding.rule):
            finding.suppressed = True
    return findings


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _load_root_vocabulary(root: Path) -> "Optional[MetricVocabulary]":
    """The repo's metric catalogue, parsed syntactically; None if absent."""
    catalog = root / "src" / "repro" / "obs" / "catalog.py"
    if not catalog.is_file():
        return None
    try:
        return load_vocabulary(catalog.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None


def analyze_paths(
    paths: Sequence[Path],
    root: Path,
    baseline: "Optional[Baseline]" = None,
    select: "Optional[Set[str]]" = None,
    fix: bool = False,
) -> AnalysisResult:
    """Analyze every Python file under ``paths``.

    With ``fix=True`` the mechanical fixers run first and files are rewritten
    in place; the findings returned reflect the post-fix state, with the
    repaired findings included but flagged ``fixed``.
    """
    result = AnalysisResult()
    vocabulary = _load_root_vocabulary(root)
    fix_rules = (
        FIXABLE_RULES if select is None else (FIXABLE_RULES & select)
    )
    for file_path in iter_python_files([Path(p) for p in paths]):
        relpath = _relpath(file_path, root)
        source = file_path.read_text(encoding="utf-8")
        result.files_checked += 1

        if fix and fix_rules:
            # Only rules with an unsuppressed finding in *this* file may
            # rewrite it (REP008 does not apply outside src/, so a tests
            # file with asserts must never be touched).
            present = {
                f.rule
                for f in analyze_source(source, relpath, select=select,
                                        vocabulary=vocabulary)
                if f.rule in fix_rules and not f.suppressed
            }
            if present:
                try:
                    new_source, n_fixed = fix_source(source, present)
                except SyntaxError:
                    new_source, n_fixed = source, 0
                if n_fixed and new_source != source:
                    file_path.write_text(new_source, encoding="utf-8")
                    source = new_source
                    result.files_fixed += 1
                    result.fixes_applied += n_fixed

        findings = analyze_source(source, relpath, select=select,
                                  vocabulary=vocabulary)
        for finding in findings:
            if (
                baseline is not None
                and not finding.suppressed
                and baseline.consume(finding)
            ):
                finding.baselined = True
            result.findings.append(finding)
    result.findings.sort(key=lambda f: f.sort_key)
    return result
