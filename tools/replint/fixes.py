"""Mechanical fixers for the rules where a rewrite is purely syntactic.

Two rules qualify:

* **REP008** ``assert test[, msg]`` becomes ``if <negated test>: raise
  AssertionError(msg)`` — semantically identical under ``python`` and, unlike
  the original, still present under ``python -O``.
* **REP006** a mutable default becomes ``None`` plus a materialising guard at
  the top of the function body.

Fixes are applied as text edits positioned by the AST, bottom-up so earlier
edits never invalidate later offsets.  Anything the fixer is not certain
about (one-line function bodies, asserts it cannot source-locate) is left
alone and stays reported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional, Tuple

from replint.suppress import SuppressionMap, collect_suppressions

__all__ = ["FIXABLE_RULES", "fix_source"]

#: Rules fix_source knows how to rewrite mechanically; must agree with
#: the ``fixable=True`` flags in the rule registry (tested).
FIXABLE_RULES = frozenset({"REP006", "REP008"})


@dataclass
class _Edit:
    """Replace the half-open span [start, end) (absolute offsets) with text."""

    start: int
    end: int
    text: str


class _Offsets:
    """Translate (lineno, col_offset) AST positions to absolute offsets."""

    def __init__(self, source: str):
        self._starts: List[int] = [0]
        for line in source.splitlines(keepends=True):
            self._starts.append(self._starts[-1] + len(line))

    def offset(self, lineno: int, col: int) -> int:
        return self._starts[lineno - 1] + col


def _negate(source: str, test: ast.expr, test_src: str) -> str:
    """Source of the *negated* condition, special-casing None comparisons.

    ``assert x is not None`` must become ``if x is None:`` (not
    ``if not (x is not None):``) so mypy's narrowing keeps working on the
    fixed code.
    """
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        left = ast.get_source_segment(source, test.left)
        if left is not None:
            if isinstance(test.ops[0], ast.IsNot):
                return f"{left.strip()} is None"
            if isinstance(test.ops[0], ast.Is):
                return f"{left.strip()} is not None"
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        # ``assert not x`` -> ``if x:`` when the operand is a simple name.
        if isinstance(test.operand, ast.Name):
            return test.operand.id
    return f"not ({test_src})"


def _fix_asserts(
    source: str, tree: ast.AST, suppressions: SuppressionMap
) -> Tuple[str, int]:
    offsets = _Offsets(source)
    edits: List[_Edit] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assert):
            continue
        if node.end_lineno is None or node.end_col_offset is None:
            continue
        if suppressions.is_suppressed(node.lineno, "REP008"):
            continue
        test_src = ast.get_source_segment(source, node.test)
        if test_src is None:
            continue
        if node.msg is not None:
            msg_src = ast.get_source_segment(source, node.msg)
            if msg_src is None:
                continue
        else:
            # Keep the violated invariant readable in the raised error.
            msg_src = repr(f"invariant violated: {' '.join(test_src.split())}")
        indent = " " * node.col_offset
        condition = _negate(source, node.test, test_src)
        replacement = (
            f"if {condition}:\n"
            f"{indent}    raise AssertionError({msg_src})"
        )
        edits.append(_Edit(
            start=offsets.offset(node.lineno, node.col_offset),
            end=offsets.offset(node.end_lineno, node.end_col_offset),
            text=replacement,
        ))
    return _apply(source, edits), len(edits)


def _mutable_default_pairs(node: "ast.FunctionDef | ast.AsyncFunctionDef"):
    from replint.rules import _is_mutable_default  # shared predicate

    arguments = node.args
    positional = arguments.posonlyargs + arguments.args
    offset = len(positional) - len(arguments.defaults)
    for i, default in enumerate(arguments.defaults):
        if _is_mutable_default(default):
            yield positional[offset + i], default
    for arg, default in zip(arguments.kwonlyargs, arguments.kw_defaults):
        if default is not None and _is_mutable_default(default):
            yield arg, default


def _fix_mutable_defaults(
    source: str, tree: ast.AST, suppressions: SuppressionMap
) -> Tuple[str, int]:
    offsets = _Offsets(source)
    edits: List[_Edit] = []
    fixed = 0
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        pairs = [
            (arg, default)
            for arg, default in _mutable_default_pairs(node)
            if not suppressions.is_suppressed(default.lineno, "REP006")
        ]
        if not pairs:
            continue
        anchor = _guard_anchor(node)
        if anchor is None:
            continue  # one-line body etc. — leave reported, unfixed
        anchor_stmt, insert_lineno = anchor
        indent = " " * anchor_stmt.col_offset
        guards = []
        for arg, default in pairs:
            default_src = ast.get_source_segment(source, default)
            if default_src is None or default.end_lineno is None:
                continue
            edits.append(_Edit(
                start=offsets.offset(default.lineno, default.col_offset),
                end=offsets.offset(default.end_lineno, default.end_col_offset or 0),
                text="None",
            ))
            guards.append(
                f"{indent}if {arg.arg} is None:\n"
                f"{indent}    {arg.arg} = {default_src}\n"
            )
            fixed += 1
        if guards:
            insert_at = offsets.offset(insert_lineno, 0)
            edits.append(_Edit(start=insert_at, end=insert_at, text="".join(guards)))
    return _apply(source, edits), fixed


def _guard_anchor(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> "Optional[Tuple[ast.stmt, int]]":
    """(statement to indent like, line number to insert before) — or None.

    The guard goes after the docstring, before the first real statement.  A
    body that starts on the ``def`` line (one-liners) is not fixable
    textually.
    """
    body = node.body
    first = body[0]
    is_docstring = (
        isinstance(first, ast.Expr)
        and isinstance(first.value, ast.Constant)
        and isinstance(first.value.value, str)
    )
    if is_docstring:
        if len(body) == 1:
            if first.end_lineno is None:
                return None
            return first, first.end_lineno + 1  # line after the docstring
        anchor = body[1]
    else:
        anchor = first
    if anchor.lineno == node.lineno:
        return None  # body on the def line
    return anchor, anchor.lineno


def _apply(source: str, edits: List[_Edit]) -> str:
    if not edits:
        return source
    result = source
    for edit in sorted(edits, key=lambda e: (e.start, e.end), reverse=True):
        result = result[: edit.start] + edit.text + result[edit.end :]
    return result


def fix_source(source: str, rules: "set[str]") -> Tuple[str, int]:
    """Apply the requested mechanical fixes; returns (new_source, n_fixed).

    Fixes are applied one rule at a time with a re-parse in between, so the
    edits never see stale offsets.
    """
    total = 0
    if "REP008" in rules:
        tree = ast.parse(source)
        source, n = _fix_asserts(source, tree, collect_suppressions(source))
        total += n
    if "REP006" in rules:
        # Re-parse (and re-scan comments) so REP008's edits cannot leave the
        # offsets or suppression line numbers stale.
        tree = ast.parse(source)
        source, n = _fix_mutable_defaults(source, tree, collect_suppressions(source))
        total += n
    if total:
        ast.parse(source)  # the rewrite must still be valid Python
    return source, total
