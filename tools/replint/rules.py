"""The replint rule implementations.

Each rule is a function ``(tree, ctx) -> list[Finding]`` over one module's
AST.  Rules are intentionally syntactic: replint runs without importing the
analysed code, so detection is based on names and shapes, with sanctioned
call sites expressed as path allow-lists in :class:`FileContext`.  The
trade-off is documented per rule — where a heuristic can miss (aliased
modules, values smuggled through attributes), the matching determinism tests
from PR 1 remain the backstop; replint catches the overwhelmingly common
spellings at review time.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from replint.finding import Finding, RULES_BY_CODE, make_finding

__all__ = [
    "FileContext",
    "MetricVocabulary",
    "load_vocabulary",
    "run_rules",
    "RULE_CHECKS",
]


@dataclass(frozen=True)
class MetricVocabulary:
    """The declared metric names from ``src/repro/obs/catalog.py``.

    Loaded *syntactically* (replint never imports analysed code): every
    string-literal first argument of a ``MetricSpec(...)`` call plus the
    literal entries of ``DYNAMIC_METRIC_PREFIXES``.  ``kinds`` maps each
    declared name to its metric kind (second ``MetricSpec`` argument,
    default ``"counter"``) so REP013 can tell events from plain counters.
    """

    names: frozenset
    prefixes: Tuple[str, ...]
    kinds: Mapping[str, str] = field(default_factory=dict)

    def known(self, name: str) -> bool:
        return name in self.names or name.startswith(self.prefixes)

    def declared_kind(self, name: str) -> Optional[str]:
        """The catalogued metric kind of ``name``; None when undeclared or
        declared with a non-literal kind (then REP013 stays silent)."""
        return self.kinds.get(name)


def _metric_spec_kind(node: ast.Call) -> Optional[str]:
    """The literal ``kind`` of one ``MetricSpec(...)`` call, if decidable."""
    if len(node.args) > 1:
        arg = node.args[1]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return None  # computed kind: undecidable syntactically
    for kw in node.keywords:
        if kw.arg == "kind":
            if isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, str):
                return kw.value.value
            return None
    return "counter"  # MetricSpec's declared default


def load_vocabulary(catalog_source: str) -> MetricVocabulary:
    """Extract the metric vocabulary from the catalogue module's source."""
    tree = ast.parse(catalog_source)
    names: Set[str] = set()
    prefixes: List[str] = []
    kinds: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            callee = _dotted(node.func)
            if callee is not None and callee.split(".")[-1] == "MetricSpec":
                if node.args and isinstance(node.args[0], ast.Constant) \
                        and isinstance(node.args[0].value, str):
                    names.add(node.args[0].value)
                    kind = _metric_spec_kind(node)
                    if kind is not None:
                        kinds[node.args[0].value] = kind
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            named = [t.id for t in targets if isinstance(t, ast.Name)]
            if "DYNAMIC_METRIC_PREFIXES" in named and isinstance(
                node.value, (ast.Tuple, ast.List)
            ):
                prefixes.extend(
                    el.value for el in node.value.elts
                    if isinstance(el, ast.Constant) and isinstance(el.value, str)
                )
    return MetricVocabulary(names=frozenset(names), prefixes=tuple(prefixes),
                            kinds=kinds)


@dataclass
class FileContext:
    """Everything a rule needs to know about the file under analysis."""

    path: str  # repo-relative posix path, e.g. "src/repro/sim/engine.py"
    lines: Sequence[str]  # raw source lines (1-indexed via line-1)
    # Metric vocabulary for REP011; None (e.g. in bare analyze_source unit
    # tests) disables the rule rather than flagging everything.
    vocabulary: Optional[MetricVocabulary] = None

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # -- path scopes ------------------------------------------------------------

    @property
    def in_tests(self) -> bool:
        return self.path.startswith("tests/") or "/tests/" in self.path

    @property
    def in_src(self) -> bool:
        return self.path.startswith("src/") or "/src/" in self.path

    @property
    def in_crypto(self) -> bool:
        return "/crypto/" in self.path

    @property
    def is_cli_shim(self) -> bool:
        """CLI entry points where console output and argv access are the job."""
        return (
            self.path.endswith("__main__.py")
            or self.path.endswith("simulate.py")
            or "/experiments/" in self.path
        )

    @property
    def rng_sanctioned(self) -> bool:
        """The one module allowed to construct streams from the random module."""
        return self.path.endswith("sim/rng.py")

    @property
    def clock_sanctioned(self) -> bool:
        """Modules allowed to read the wall clock.

        Three, by design: the CLI stopwatch shim and the profiler stack
        (measurement *about* the simulation, never an input to it).
        """
        return self.path.endswith(
            ("experiments/reporting.py", "obs/profile.py", "obs/perf.py")
        )

    @property
    def profiling_sanctioned(self) -> bool:
        """The profiler stack: the only modules allowed to touch tracemalloc."""
        return self.path.endswith(("obs/profile.py", "obs/perf.py"))

    @property
    def fs_sanctioned(self) -> bool:
        """Modules allowed raw fs syscalls: the persist seam and the chaos
        engine that interposes on it."""
        return (
            self.path.endswith("repro/persist.py")
            or "/chaos/" in self.path
        )


def _finding(code: str, ctx: FileContext, node: ast.AST, message: str) -> Finding:
    lineno = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    return make_finding(
        RULES_BY_CODE[code], ctx.path, lineno, col, message,
        source_line=ctx.source_line(lineno),
    )


def _dotted(node: ast.AST) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to a dotted string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# REP001 — global-random
# ---------------------------------------------------------------------------

# Module-level sampling entry points of the stdlib random module.  Calling any
# of these consumes (or reseeds) the hidden global Mersenne Twister.
_RANDOM_SAMPLERS = {
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "sample", "shuffle", "seed", "getrandbits", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "betavariate", "gammavariate",
    "triangular", "vonmisesvariate", "paretovariate", "weibullvariate",
    "randbytes", "binomialvariate",
}

_NUMPY_ALIASES = {"numpy", "np"}


def check_rep001(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """Global random / numpy.random use outside the sanctioned stream factory."""
    if ctx.rng_sanctioned:
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        head, _, tail = dotted.partition(".")
        if head == "random" and tail in _RANDOM_SAMPLERS:
            findings.append(_finding(
                "REP001", ctx, node,
                f"call to global random.{tail}() — draw from an injected "
                "random.Random (see sim/rng.py derived_stream/RngRegistry)",
            ))
        elif dotted == "random.Random" and not ctx.in_tests:
            # Tests may construct seeded streams at the fixture boundary —
            # that *is* the injection point.  Library code must go through
            # sim/rng.py so stream derivation stays in one audited place.
            findings.append(_finding(
                "REP001", ctx, node,
                "random.Random constructed outside sim/rng.py — accept an "
                "injected stream or use sim.rng.derived_stream(...)",
            ))
        elif head in _NUMPY_ALIASES and tail.startswith("random."):
            # Tests may construct *seeded* generators at the fixture
            # boundary, mirroring the random.Random allowance above.
            seeded_test_ctor = (
                ctx.in_tests
                and tail == "random.default_rng"
                and bool(node.args or node.keywords)
            )
            if not seeded_test_ctor:
                findings.append(_finding(
                    "REP001", ctx, node,
                    f"call to {dotted}() — use RngRegistry.get_numpy(...) "
                    "from sim/rng.py for seeded numpy streams",
                ))
    return findings


# ---------------------------------------------------------------------------
# REP002 — wall-clock
# ---------------------------------------------------------------------------

_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.localtime", "time.gmtime",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today", "date.today",
}


def check_rep002(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """Wall-clock reads outside the reporting stopwatch."""
    if ctx.clock_sanctioned:
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted in _CLOCK_CALLS:
            findings.append(_finding(
                "REP002", ctx, node,
                f"wall-clock read {dotted}() — simulation logic must be a "
                "pure function of (config, seed); for CLI timing use "
                "repro.experiments.reporting.stopwatch()",
            ))
    return findings


# ---------------------------------------------------------------------------
# REP003 — unordered-iteration
# ---------------------------------------------------------------------------

_SET_RETURNING_METHODS = {
    "union", "intersection", "difference", "symmetric_difference",
}


class _SetTracker(ast.NodeVisitor):
    """Track local names bound to syntactic set expressions, per function."""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.findings: List[Finding] = []
        self._set_names: List[Set[str]] = [set()]  # stack of scopes

    # -- scope handling --

    def _enter_scope(self) -> None:
        self._set_names.append(set())

    def _exit_scope(self) -> None:
        self._set_names.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _name_is_set(self, name: str) -> bool:
        return any(name in scope for scope in self._set_names)

    def _is_set_expr(self, node: ast.AST) -> bool:
        """Syntactic evidence that ``node`` evaluates to a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_RETURNING_METHODS
                and self._is_set_expr(node.func.value)
            ):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return self._name_is_set(node.id)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self._set_names[-1].add(target.id)
                else:
                    self._set_names[-1].discard(target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # ``s |= other`` keeps (or makes) s a set-ish name.
        if (
            isinstance(node.target, ast.Name)
            and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.BitXor))
            and self._is_set_expr(node.value)
        ):
            self._set_names[-1].add(node.target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        ann = _dotted(node.annotation) if not isinstance(
            node.annotation, ast.Subscript
        ) else _dotted(node.annotation.value)
        if isinstance(node.target, ast.Name) and ann in ("set", "Set", "typing.Set", "frozenset", "FrozenSet"):
            self._set_names[-1].add(node.target.id)
        self.generic_visit(node)

    # -- consumption sites --

    def _flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(_finding(
            "REP003", self.ctx, node,
            f"{what} iterates a set in hash order — wrap the iterable in "
            "sorted(...) so event/packet order is independent of "
            "PYTHONHASHSEED",
        ))

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag(node.iter, "for loop")
        self.generic_visit(node)

    def visit_comprehension_iter(self, comp: ast.comprehension) -> None:
        if self._is_set_expr(comp.iter):
            self._flag(comp.iter, "comprehension")

    def _visit_comp(self, node: ast.AST) -> None:
        for comp in getattr(node, "generators", []):
            self.visit_comprehension_iter(comp)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building one set from another is order-free; only flag if the
        # element expression itself is order-sensitive (out of scope here).
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted in ("list", "tuple", "enumerate", "iter", "next") and node.args:
            if self._is_set_expr(node.args[0]):
                self._flag(node.args[0], f"{dotted}() over a set")
        # sorted()/len()/sum()/min()/max()/any()/all() over sets are fine:
        # either order-insensitive or explicitly ordering.
        self.generic_visit(node)


def check_rep003(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """Unordered set iteration at event/packet decision points.

    Syntactic heuristic: only expressions that are *visibly* sets in the
    local scope are flagged (set literals/calls/comprehensions, set algebra,
    names assigned from those).  Sets that arrive through attributes or
    parameters are out of reach — the determinism trace tests cover those.
    """
    if ctx.in_tests:
        return []
    tracker = _SetTracker(ctx)
    tracker.visit(tree)
    return tracker.findings


# ---------------------------------------------------------------------------
# REP004 — crypto-hygiene
# ---------------------------------------------------------------------------

_WEAK_HASHES = {"md5", "sha1"}


def check_rep004(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """Weak hash primitives anywhere; random-module material in crypto/."""
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        head, _, tail = dotted.partition(".")
        if head == "hashlib" and tail in _WEAK_HASHES:
            findings.append(_finding(
                "REP004", ctx, node,
                f"hashlib.{tail} is collision-broken — the protocol's Merkle/"
                "hash-chain security argument needs sha256 or stronger",
            ))
        elif dotted == "hashlib.new" and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and str(arg.value).lower() in _WEAK_HASHES:
                findings.append(_finding(
                    "REP004", ctx, node,
                    f"hashlib.new({arg.value!r}) selects a collision-broken "
                    "hash — use sha256 or stronger",
                ))
        elif ctx.in_crypto and head == "random":
            findings.append(_finding(
                "REP004", ctx, node,
                "random module used in crypto/ — the Mersenne Twister is "
                "predictable from output; derive keys/nonces from the "
                "keychain or hashlib, or use the secrets module",
            ))
    return findings


# ---------------------------------------------------------------------------
# REP005 — swallowed-exceptions
# ---------------------------------------------------------------------------

def _body_is_noop(body: Sequence[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        if isinstance(stmt, ast.Continue):
            continue
        return False
    return True


def check_rep005(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """Bare excepts, and broad excepts whose body does nothing."""
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            findings.append(_finding(
                "REP005", ctx, node,
                "bare except: catches SystemExit/KeyboardInterrupt too — "
                "name the exception types this handler can actually recover",
            ))
            continue
        broad = _dotted(node.type) in ("Exception", "BaseException")
        if broad and _body_is_noop(node.body):
            findings.append(_finding(
                "REP005", ctx, node,
                "except Exception with an empty body silently swallows "
                "protocol errors — narrow the type or record the failure",
            ))
    return findings


# ---------------------------------------------------------------------------
# REP006 — mutable-default
# ---------------------------------------------------------------------------

def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func)
        return dotted in ("list", "dict", "set", "bytearray",
                          "collections.defaultdict", "defaultdict",
                          "collections.deque", "deque",
                          "collections.OrderedDict", "OrderedDict",
                          "collections.Counter", "Counter")
    return False


def check_rep006(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """Mutable default arguments (shared across calls, leaks state)."""
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        arguments = node.args
        positional = arguments.posonlyargs + arguments.args
        pos_defaults = arguments.defaults
        offset = len(positional) - len(pos_defaults)
        pairs: List[Tuple[ast.arg, ast.AST]] = [
            (positional[offset + i], default)
            for i, default in enumerate(pos_defaults)
        ]
        pairs += [
            (arg, default)
            for arg, default in zip(arguments.kwonlyargs, arguments.kw_defaults)
            if default is not None
        ]
        for arg, default in pairs:
            if _is_mutable_default(default):
                findings.append(_finding(
                    "REP006", ctx, default,
                    f"mutable default for parameter '{arg.arg}' is shared "
                    "across calls — default to None and materialise in the "
                    "body (fixable with --fix)",
                ))
    return findings


# ---------------------------------------------------------------------------
# REP007 — handler-purity
# ---------------------------------------------------------------------------

_SCHEDULE_METHODS = {"schedule", "schedule_at", "call_later", "call_at"}

_MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse",
    "appendleft", "popleft",
}


def _callback_names(call: ast.Call) -> List[str]:
    """Names/attribute-tails of the callback argument of a schedule call."""
    names: List[str] = []
    if len(call.args) >= 2:
        cb = call.args[1]
        if isinstance(cb, ast.Name):
            names.append(cb.id)
        elif isinstance(cb, ast.Attribute):
            names.append(cb.attr)
    return names


def check_rep007(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """Functions scheduled on the engine must not touch module globals.

    Detection: any function whose name appears as the callback argument of a
    ``.schedule(...)``/``.schedule_at(...)`` call in the same module is a
    *handler*.  Inside handlers, flag: ``global`` declarations that are
    written, stores to module-level names, and mutating method calls or
    subscript stores on module-level names.
    """
    if ctx.in_tests:
        return []
    module_names: Set[str] = set()
    for stmt in getattr(tree, "body", []):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    module_names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            module_names.add(stmt.target.id)

    # Collect handler names from schedule call sites.
    handler_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _SCHEDULE_METHODS:
                handler_names.update(_callback_names(node))
    if not handler_names:
        return []

    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name not in handler_names:
            continue
        declared_global: Set[str] = set()
        for inner in ast.walk(node):
            if isinstance(inner, ast.Global):
                declared_global.update(inner.names)
                findings.append(_finding(
                    "REP007", ctx, inner,
                    f"handler '{node.name}' declares global "
                    f"{', '.join(inner.names)} — event handlers must keep "
                    "state on the node/protocol instance",
                ))
            elif isinstance(inner, (ast.Assign, ast.AugAssign)):
                targets = (
                    inner.targets if isinstance(inner, ast.Assign)
                    else [inner.target]
                )
                for target in targets:
                    base = target
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        base = base.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in module_names
                        and not isinstance(target, ast.Name)
                    ):
                        findings.append(_finding(
                            "REP007", ctx, inner,
                            f"handler '{node.name}' mutates module-level "
                            f"'{base.id}' — handler state belongs on the "
                            "instance",
                        ))
            elif isinstance(inner, ast.Call) and isinstance(inner.func, ast.Attribute):
                if inner.func.attr in _MUTATING_METHODS and isinstance(
                    inner.func.value, ast.Name
                ) and inner.func.value.id in module_names:
                    findings.append(_finding(
                        "REP007", ctx, inner,
                        f"handler '{node.name}' calls "
                        f"{inner.func.value.id}.{inner.func.attr}() on "
                        "module-level state — handler state belongs on the "
                        "instance",
                    ))
    return findings


# ---------------------------------------------------------------------------
# REP008 — assert-validation
# ---------------------------------------------------------------------------

def check_rep008(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """assert used for runtime validation in shipped src/ code."""
    if not ctx.in_src:
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assert):
            findings.append(_finding(
                "REP008", ctx, node,
                "assert is stripped under python -O — raise an explicit "
                "exception for runtime validation (fixable with --fix)",
            ))
    return findings


# ---------------------------------------------------------------------------
# REP009 — stray-print
# ---------------------------------------------------------------------------

def check_rep009(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """print() in library code (outside CLI shims, experiments, tests)."""
    if ctx.in_tests or ctx.is_cli_shim or not ctx.in_src:
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            findings.append(_finding(
                "REP009", ctx, node,
                "print() in library code — report via return values or the "
                "trace recorder",
            ))
    return findings


# ---------------------------------------------------------------------------
# REP010 — env-dependence
# ---------------------------------------------------------------------------

def check_rep010(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """os.environ / os.getenv / sys.argv outside CLI and config shims."""
    if ctx.in_tests or ctx.is_cli_shim or ctx.path.endswith("core/config.py"):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        dotted: Optional[str] = None
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted not in ("os.getenv", "os.environ.get"):
                dotted = None
        elif isinstance(node, (ast.Attribute, ast.Subscript)):
            dotted = _dotted(node if isinstance(node, ast.Attribute) else node.value)
            if dotted not in ("os.environ", "sys.argv"):
                dotted = None
        if dotted:
            findings.append(_finding(
                "REP010", ctx, node,
                f"{dotted} read in library code — environment must enter "
                "through explicit config (core/config.py) or the CLI",
            ))
    # Deduplicate nested matches (os.environ inside os.environ.get, the
    # Attribute inside the Subscript, etc.) — keep one finding per location.
    unique: Dict[Tuple[int, int], Finding] = {}
    for f in findings:
        unique.setdefault((f.line, f.col), f)
    return list(unique.values())


# ---------------------------------------------------------------------------
# REP011 — unknown-metric
# ---------------------------------------------------------------------------

# TraceRecorder entry points and the position of their kind-string argument.
_METRIC_METHODS = {"count": 0, "record": 1, "span_begin": 1, "span_end": 1}

_METRIC_KEYWORDS = {"count": "name", "record": "kind",
                    "span_begin": "kind", "span_end": "kind"}


def _metric_kind_arg(node: ast.Call, method: str) -> Optional[ast.expr]:
    """The kind/name argument of a recorder call, positional or keyword."""
    pos = _METRIC_METHODS[method]
    if len(node.args) > pos:
        return node.args[pos]
    wanted = _METRIC_KEYWORDS[method]
    for kw in node.keywords:
        if kw.arg == wanted:
            return kw.value
    return None


def check_rep011(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """Literal metric kinds must be declared in the central catalogue.

    Detection: calls ``<...>.trace.count/record/span_begin/span_end`` (or on
    a bare name ``trace``) whose kind argument is a string literal.  Kinds
    built at runtime (f-strings like ``tx_{kind.value}``) are skipped — the
    catalogue covers those via declared dynamic prefixes, and the registry's
    ``unregistered_names()`` reports any that escape.  Without a loaded
    vocabulary (bare ``analyze_source``) the rule is inert.
    """
    vocab = ctx.vocabulary
    if vocab is None or ctx.in_tests:
        return []
    if ctx.path.endswith("obs/catalog.py"):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            continue
        method = node.func.attr
        if method not in _METRIC_METHODS:
            continue
        receiver = _dotted(node.func.value)
        if receiver is None or not (
            receiver == "trace" or receiver.endswith(".trace")
        ):
            continue
        arg = _metric_kind_arg(node, method)
        if not isinstance(arg, ast.Constant) or not isinstance(arg.value, str):
            continue
        if not vocab.known(arg.value):
            findings.append(_finding(
                "REP011", ctx, node,
                f"metric kind {arg.value!r} is not declared in "
                "src/repro/obs/catalog.py — add a MetricSpec (name, kind, "
                "unit, help) or fix the typo; orphan counters never reach "
                "reports",
            ))
    return findings


# ---------------------------------------------------------------------------
# REP013 — non-event-trace-kind
# ---------------------------------------------------------------------------

# Structured-event entry points: their kind lands in the EventLog, so it
# must be catalogued as kind="event".  trace.count() is the counter path
# and stays REP011-only.
_EVENT_METHODS = ("record", "span_begin", "span_end")


def check_rep013(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """Structured-event kinds must be declared ``kind="event"``.

    Detection mirrors REP011 (same receivers, same literal-kind argument),
    but instead of unknown names it flags *known* names whose catalogued
    metric kind is not ``"event"``: a counter name passed to
    ``trace.record``/``span_begin``/``span_end`` produces trace entries the
    offline tooling (invariant checker, flight analyzer) never dispatches
    on.  Unknown names stay REP011's finding — one problem, one code.
    Names whose declared kind is syntactically undecidable are skipped.
    """
    vocab = ctx.vocabulary
    if vocab is None or ctx.in_tests:
        return []
    if ctx.path.endswith("obs/catalog.py"):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            continue
        method = node.func.attr
        if method not in _EVENT_METHODS:
            continue
        receiver = _dotted(node.func.value)
        if receiver is None or not (
            receiver == "trace" or receiver.endswith(".trace")
        ):
            continue
        arg = _metric_kind_arg(node, method)
        if not isinstance(arg, ast.Constant) or not isinstance(arg.value, str):
            continue
        if not vocab.known(arg.value):
            continue  # REP011's territory
        declared = vocab.declared_kind(arg.value)
        if declared is not None and declared != "event":
            findings.append(_finding(
                "REP013", ctx, node,
                f"trace.{method}() kind {arg.value!r} is declared "
                f'kind="{declared}" in src/repro/obs/catalog.py — '
                "structured-event call sites need an event-kind entry "
                "(or use trace.count() for plain counters)",
            ))
    return findings


# ---------------------------------------------------------------------------
# REP012 — unsanctioned-artifact-write
# ---------------------------------------------------------------------------

# Mode strings that open a file for writing (create, truncate, append,
# exclusive, or update).  Pure reads ("r", "rb") pass.
def _mode_writes(mode: str) -> bool:
    return any(ch in mode for ch in "wax+")


def _open_mode(node: ast.Call) -> Optional[str]:
    """The literal mode of an ``open(...)``/``os.fdopen(...)`` call, if any.

    Returns "r" when the call has no mode argument (open's default), and
    None when the mode is a non-literal expression (dynamic modes are rare
    enough that flagging them would be noise).
    """
    for kw in node.keywords:
        if kw.arg == "mode":
            if isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, str):
                return kw.value.value
            return None
    if len(node.args) >= 2:
        arg = node.args[1]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return None
    return "r"


def check_rep012(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """Direct artifact writes in src/ outside the sanctioned persist helper.

    Detection: ``open(...)`` / ``os.fdopen(...)`` with a write/append/update
    mode, and any ``<...>.write_text(...)`` call.  ``src/repro/persist.py``
    is the single sanctioned call site (its helpers implement the atomic
    write-temp-then-rename + fsync protocol); tests and tools may write
    however they like.  Heuristic limits: a file handle smuggled through a
    helper that opens on the caller's behalf is not seen — the REP012 test
    fixtures and review remain the backstop for exotic spellings.
    """
    if not ctx.in_src or ctx.path.endswith("repro/persist.py"):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted in ("open", "os.fdopen", "io.open"):
            mode = _open_mode(node)
            if mode is not None and _mode_writes(mode):
                findings.append(_finding(
                    "REP012", ctx, node,
                    f"{dotted}(..., {mode!r}) writes an artifact directly — "
                    "route it through repro/persist.py (atomic_write_text/"
                    "json/jsonl) so a crash cannot tear the file",
                ))
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "write_text":
            findings.append(_finding(
                "REP012", ctx, node,
                ".write_text(...) writes an artifact directly — route it "
                "through repro/persist.py (atomic_write_text/json/jsonl) "
                "so a crash cannot tear the file",
            ))
    return findings


# ---------------------------------------------------------------------------
# REP014 — queue-order-read
# ---------------------------------------------------------------------------

# Engine introspection surface whose value depends on the heap's tie-break
# order among same-timestamp events.
_QUEUE_INTROSPECTION = {
    "pending_events", "processed_events", "heap_stats", "_queue", "_seq",
}


def _is_zero_delay(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value in (0, 0.0)


def _mentions_now(node: ast.expr) -> bool:
    """Does a schedule_at time expression reference ``<...>.now``?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "now":
            return True
        if isinstance(sub, ast.Name) and sub.id == "now":
            return True
    return False


def check_rep014(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """Same-timestamp callbacks that read engine queue introspection.

    Detection: a function is a *same-timestamp handler* when its name is
    the callback argument of a ``.schedule(0, ...)``/``.schedule(0.0, ...)``
    call or of a ``.schedule_at(<...>.now, ...)`` call in the same module —
    it will run inside the scheduling event's own timestamp group, where
    order is pure tie-break.  Inside such handlers, any read of the
    engine's queue introspection (pending_events, processed_events,
    heap_stats, _queue, _seq) is flagged.  Callbacks smuggled through
    variables and cross-module handlers are out of syntactic reach — the
    schedule-perturbation harness is the dynamic backstop.
    """
    if ctx.in_tests:
        return []
    same_ts_handlers: Set[str] = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in _SCHEDULE_METHODS or not node.args:
            continue
        when = node.args[0]
        zero = (node.func.attr in ("schedule", "call_later")
                and _is_zero_delay(when))
        at_now = (node.func.attr in ("schedule_at", "call_at")
                  and _mentions_now(when))
        if zero or at_now:
            same_ts_handlers.update(_callback_names(node))
    if not same_ts_handlers:
        return []

    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name not in same_ts_handlers:
            continue
        for inner in ast.walk(node):
            if (isinstance(inner, ast.Attribute)
                    and isinstance(inner.ctx, ast.Load)
                    and inner.attr in _QUEUE_INTROSPECTION):
                findings.append(_finding(
                    "REP014", ctx, inner,
                    f"'{node.name}' runs in its scheduler's timestamp group "
                    f"(scheduled with zero delay / at sim.now) and reads "
                    f"engine queue state '.{inner.attr}' — its value there "
                    "is tie-break order, which the sanitizer permutes; "
                    "derive the decision from simulated time or node state",
                ))
    return findings


# ---------------------------------------------------------------------------
# REP015 — shared-class-state
# ---------------------------------------------------------------------------

def _rep015_scoped(ctx: FileContext) -> bool:
    """Modules whose classes are instantiated once per network participant."""
    return ctx.in_src and any(
        part in ctx.path for part in ("/net/", "/protocols/", "/attacks/")
    )


def check_rep015(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """Mutable class-level attributes (and defaults) on per-node classes.

    Scope: ``src`` modules under ``net/``, ``protocols/`` and ``attacks/``
    — the classes instantiated once per network participant.  A mutable
    container in a class body is shared by every instance; one per-node
    class is all it takes to couple the whole network through event order.
    ``__slots__`` and ``dataclasses.field(...)`` initialisers are exempt
    (per-instance by construction).  Mutable *defaults* on these classes'
    methods are also flagged here (they alias state across nodes the same
    way), in addition to REP006's generic finding.
    """
    if not _rep015_scoped(ctx):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                names = [t.id for t in targets if isinstance(t, ast.Name)]
                if "__slots__" in names or stmt.value is None:
                    continue
                if _is_mutable_default(stmt.value):
                    label = names[0] if names else "<attribute>"
                    findings.append(_finding(
                        "REP015", ctx, stmt,
                        f"class attribute '{node.name}.{label}' is a mutable "
                        "container shared by every instance — every node in "
                        "the network reads/writes the same object; "
                        "initialise it per-instance in __init__",
                    ))
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                arguments = stmt.args
                defaults = list(arguments.defaults) + [
                    d for d in arguments.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _is_mutable_default(default):
                        findings.append(_finding(
                            "REP015", ctx, default,
                            f"mutable default on '{node.name}.{stmt.name}' "
                            "is shared across every node's calls — default "
                            "to None and materialise per instance",
                        ))
    return findings


# ---------------------------------------------------------------------------
# REP016 — hot-path-unordered
# ---------------------------------------------------------------------------

_HOT_PATH_SUFFIXES = ("sim/engine.py", "net/radio.py", "net/channel.py")

_SET_ANNOTATIONS = {"set", "Set", "typing.Set", "frozenset", "FrozenSet",
                    "typing.FrozenSet"}


def _is_hot_path(ctx: FileContext) -> bool:
    return ctx.path.endswith(_HOT_PATH_SUFFIXES)


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    return _dotted(target) in _SET_ANNOTATIONS


class _HotSetTracker(_SetTracker):
    """REP003's tracker, extended to see ``self.<attr>`` sets and set-typed
    parameters — the shapes that dominate hot-path modules."""

    def __init__(self, ctx: FileContext, attr_sets: Set[str]):
        super().__init__(ctx)
        self._attr_sets = attr_sets

    def _is_set_expr(self, node: ast.AST) -> bool:
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self._attr_sets):
            return True
        return super()._is_set_expr(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope()
        for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
            if _annotation_is_set(arg.annotation):
                self._set_names[-1].add(arg.arg)
        self.generic_visit(node)
        self._exit_scope()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(_finding(
            "REP016", self.ctx, node,
            f"{what} iterates a set on the hot path — this module runs "
            "under every event of every run; wrap the iterable in "
            "sorted(...) or restructure around an ordered container",
        ))


def _module_attr_sets(tree: ast.AST) -> Set[str]:
    """Attribute names assigned set values (or set annotations) anywhere."""
    attrs: Set[str] = set()
    probe = _SetTracker.__new__(_SetTracker)
    probe._set_names = [set()]
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and probe._is_set_expr(node.value)):
                    attrs.add(target.attr)
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and _annotation_is_set(node.annotation)):
                attrs.add(target.attr)
    return attrs


def check_rep016(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """Unordered set iteration in hot-path modules.

    REP003 already flags *local* set names feeding decisions anywhere in
    src; this rule closes the attribute/parameter gap specifically for the
    modules under every event (sim/engine.py, net/radio.py,
    net/channel.py): iteration over ``self.<attr>`` sets and set-annotated
    parameters.  Dict iteration is exempt — CPython dicts iterate in
    insertion order, deterministic for a deterministic run.
    """
    if not _is_hot_path(ctx):
        return []
    tracker = _HotSetTracker(ctx, _module_attr_sets(tree))
    tracker.visit(tree)
    # REP003 flags local-name sets in these files too; keep only findings
    # REP003 cannot see so one defect maps to one code.
    rep003 = {(f.line, f.col) for f in check_rep003(tree, ctx)}
    return [f for f in tracker.findings if (f.line, f.col) not in rep003]


# ---------------------------------------------------------------------------
# REP017 — hot-path-allocation
# ---------------------------------------------------------------------------

_MATERIALISERS = {"list", "set", "dict", "tuple", "frozenset"}


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.AST]:
    """The @dataclass decorator of a class, or None."""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if _dotted(target) in ("dataclass", "dataclasses.dataclass"):
            return dec
    return None


def _dataclass_has_slots(node: ast.ClassDef, decorator: ast.AST) -> bool:
    if isinstance(decorator, ast.Call):
        for kw in decorator.keywords:
            if (kw.arg == "slots" and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True):
                return True
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in stmt.targets):
                return True
    return False


def check_rep017(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """Allocation anti-patterns in hot-path modules (WARNING).

    Two shapes, both scoped to sim/engine.py, net/radio.py and
    net/channel.py: (a) a @dataclass without ``slots=True`` (or a manual
    ``__slots__``) — a per-instance ``__dict__`` on a per-event object;
    (b) a comprehension or list()/set()/dict()/tuple() materialiser inside
    a loop body or inside a handler scheduled in this module — an
    allocation per iteration of the innermost loop the simulation has.
    Warnings, not errors: the perf gate measures, this rule points.
    """
    if not _is_hot_path(ctx):
        return []
    findings: List[Finding] = []

    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            decorator = _dataclass_decorator(node)
            if decorator is not None and not _dataclass_has_slots(node, decorator):
                findings.append(_finding(
                    "REP017", ctx, node,
                    f"@dataclass '{node.name}' on the hot path has no "
                    "slots — each instance carries a __dict__; add "
                    "slots=True (or a __slots__ tuple) or move the class "
                    "off the hot path",
                ))

    handler_names: Set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SCHEDULE_METHODS):
            handler_names.update(_callback_names(node))

    def _alloc_sites(body: Sequence[ast.stmt]) -> List[Tuple[ast.AST, str]]:
        sites: List[Tuple[ast.AST, str]] = []
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp)):
                    sites.append((sub, "comprehension"))
                elif (isinstance(sub, ast.Call)
                      and isinstance(sub.func, ast.Name)
                      and sub.func.id in _MATERIALISERS
                      and (sub.args or sub.keywords)):
                    sites.append((sub, f"{sub.func.id}() materialiser"))
        return sites

    flagged: Set[Tuple[int, int]] = set()

    def _flag(sub: ast.AST, what: str, where: str) -> None:
        key = (getattr(sub, "lineno", 0), getattr(sub, "col_offset", 0))
        if key in flagged:
            return
        flagged.add(key)
        findings.append(_finding(
            "REP017", ctx, sub,
            f"{what} {where} on the hot path allocates per iteration/event "
            "— hoist it, reuse a buffer, or justify with a suppression",
        ))

    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.While)):
            for sub, what in _alloc_sites(node.body):
                _flag(sub, what, "inside a loop body")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in handler_names:
                for sub, what in _alloc_sites(node.body):
                    _flag(sub, what, f"in scheduled handler '{node.name}'")
    return findings


# ---------------------------------------------------------------------------
# REP018 — unsanctioned-profiling
# ---------------------------------------------------------------------------

# Clock entry points of the time module by *bare* name, the spelling REP002's
# dotted-name matching cannot see once they are from-imported.
_BARE_CLOCK_NAMES = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
}


def check_rep018(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """tracemalloc use, and from-imported clock calls, outside the profilers.

    Two gaps this closes over REP002: (a) ``tracemalloc`` — starting or
    stopping allocation tracing is process-global state that perturbs every
    other measurement in flight, so it belongs exclusively to the profiler
    stack (``obs/profile.py``, ``obs/perf.py``), which manages the tracing
    lifecycle and exposes results through sanctioned hooks; (b) ``from time
    import perf_counter`` followed by a bare ``perf_counter()`` call — the
    dotted spelling is REP002's territory, but the from-imported form slips
    past its name matching.  Tests are exempt (they may assert about the
    profiler's own tracemalloc handling).  Aliased imports are tracked;
    values smuggled through attributes remain out of syntactic reach.
    """
    if ctx.in_tests:
        return []
    findings: List[Finding] = []
    clock_aliases: Dict[str, str] = {}
    tracemalloc_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _BARE_CLOCK_NAMES:
                        clock_aliases[alias.asname or alias.name] = alias.name
            elif node.module == "tracemalloc" and not ctx.profiling_sanctioned:
                findings.append(_finding(
                    "REP018", ctx, node,
                    "tracemalloc imported outside the profiler stack — "
                    "allocation tracing is process-global; use "
                    "LoopProfiler(alloc=True) from repro.obs.profile",
                ))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "tracemalloc":
                    tracemalloc_names.add(alias.asname or alias.name)
                    if not ctx.profiling_sanctioned:
                        findings.append(_finding(
                            "REP018", ctx, node,
                            "tracemalloc imported outside the profiler stack "
                            "— allocation tracing is process-global; use "
                            "LoopProfiler(alloc=True) from repro.obs.profile",
                        ))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        head = dotted.partition(".")[0]
        if (
            "." in dotted
            and head in tracemalloc_names
            and not ctx.profiling_sanctioned
        ):
            findings.append(_finding(
                "REP018", ctx, node,
                f"{dotted}() mutates process-global allocation tracing — "
                "only the profiler stack (obs/profile.py, obs/perf.py) may "
                "drive tracemalloc",
            ))
        elif dotted in clock_aliases and not ctx.clock_sanctioned:
            origin = clock_aliases[dotted]
            findings.append(_finding(
                "REP018", ctx, node,
                f"bare {dotted}() reads the wall clock (from time import "
                f"{origin}) — simulation logic must be a pure function of "
                "(config, seed); for CLI timing use "
                "repro.experiments.reporting.stopwatch(), for profiling use "
                "repro.obs.profile.LoopProfiler",
            ))
    return findings


# ---------------------------------------------------------------------------
# REP019 — unsanctioned-fs-syscall
# ---------------------------------------------------------------------------

# os-level calls that mutate the filesystem.  Durability guarantees (atomic
# replace, fsynced appends, torn-tail repair) and chaos-fault coverage both
# live behind the repro.persist.FileSystem seam; a direct call bypasses the
# crash-point explorer entirely, so whatever it writes is never proven
# recoverable.  Read-only calls (os.read, os.lseek, os.stat) stay legal.
_FS_MUTATING_OS_CALLS = {
    "write", "fsync", "fdatasync", "replace", "rename", "open", "fdopen",
    "truncate", "ftruncate", "unlink", "remove", "link", "symlink",
}


def check_rep019(tree: ast.AST, ctx: FileContext) -> List[Finding]:
    """Direct fs-mutating os calls in src/ outside the persist/chaos seam.

    Covers the dotted spelling (``os.replace(...)``), aliased module imports
    (``import os as _os``), and from-imports (``from os import replace``).
    Tests and tools are exempt — the seam protects the *shipped* durability
    layer; tests routinely build fixtures with raw syscalls.
    """
    if not ctx.in_src or ctx.fs_sanctioned:
        return []
    findings: List[Finding] = []
    os_names: Set[str] = set()
    fs_aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "os":
                    os_names.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "os":
            for alias in node.names:
                if alias.name in _FS_MUTATING_OS_CALLS:
                    fs_aliases[alias.asname or alias.name] = alias.name
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        head, _, tail = dotted.partition(".")
        if tail in _FS_MUTATING_OS_CALLS and head in os_names:
            origin = tail
        elif "." not in dotted and dotted in fs_aliases:
            origin = fs_aliases[dotted]
        else:
            continue
        findings.append(_finding(
            "REP019", ctx, node,
            f"{dotted}() bypasses the persist seam — durability code must "
            "go through repro.persist (atomic_write_*/atomic_append_jsonl "
            "or current_fs()), where crash-point exploration and fault "
            f"injection can see the {origin} syscall",
        ))
    return findings


RULE_CHECKS: Dict[str, Callable[[ast.AST, FileContext], List[Finding]]] = {
    "REP001": check_rep001,
    "REP002": check_rep002,
    "REP003": check_rep003,
    "REP004": check_rep004,
    "REP005": check_rep005,
    "REP006": check_rep006,
    "REP007": check_rep007,
    "REP008": check_rep008,
    "REP009": check_rep009,
    "REP010": check_rep010,
    "REP011": check_rep011,
    "REP012": check_rep012,
    "REP013": check_rep013,
    "REP014": check_rep014,
    "REP015": check_rep015,
    "REP016": check_rep016,
    "REP017": check_rep017,
    "REP018": check_rep018,
    "REP019": check_rep019,
}


def run_rules(
    tree: ast.AST,
    ctx: FileContext,
    select: "Optional[Set[str]]" = None,
) -> List[Finding]:
    """Run all (or the selected subset of) rules over one parsed module."""
    findings: List[Finding] = []
    for code, check in RULE_CHECKS.items():
        if select is not None and code not in select:
            continue
        findings.extend(check(tree, ctx))
    findings.sort(key=lambda f: f.sort_key)
    return findings
